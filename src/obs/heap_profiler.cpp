/**
 * @file
 * Heap-profiler implementation.  See heap_profiler.hpp for the model.
 *
 * Everything the hooks touch before deciding they are off is
 * constant-initialized BSS (atomics, plain-POD thread_locals), so the
 * replacement operators are safe from the first pre-main allocation
 * to the last static destructor.  Once armed, recording is guarded by
 * a thread_local reentrancy flag: any allocation the profiler itself
 * makes (aggregation-map nodes, thread_local registration, the
 * symbol cache) passes through unrecorded instead of recursing.
 *
 * Mutable shared state that outlives arming (the aggregation map and
 * its mutex) is intentionally immortal — function-local leaked
 * singletons, never destroyed — because interposed operator delete
 * keeps running through static destruction and must never race a
 * dying mutex.  The same reasoning the stats plane documents.
 */

#include "obs/heap_profiler.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include <execinfo.h>
#include <malloc.h>

#include "kernels/isa.hpp"
#include "kernels/roofline.hpp"
#include "obs/atomic_file.hpp"
#include "obs/env.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mrq {
namespace obs {

namespace detail {
std::atomic<int> g_heap_hooks{0};
std::atomic<int> g_heapprof_running{0};
std::atomic<bool> g_heap_interposed{false};
} // namespace detail

namespace {

// ---- constant-initialized hot state -------------------------------

thread_local bool t_in_hook = false;
thread_local long long t_accum_bytes = 0;
thread_local int t_guard_depth = 0;
thread_local const char* t_guard_site = nullptr;

std::atomic<std::int64_t> g_current_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<std::int64_t> g_free_count{0};
std::atomic<std::int64_t> g_free_bytes{0};
std::atomic<std::int64_t> g_samples{0};
std::atomic<std::int64_t> g_sampled_bytes{0};
std::atomic<std::int64_t> g_size_class[kHeapSizeClasses] = {};
std::atomic<std::int64_t> g_interval_bytes{kHeapDefaultIntervalBytes};

std::atomic<int> g_active_guards{0};
std::atomic<std::int64_t> g_guard_violations{0};
std::atomic<int> g_guard_mode{-1}; // -1 = read MRQ_ALLOC_GUARD lazily

// First violating allocation, captured once: 0 empty, 1 being
// written, 2 ready for the reporting guard to symbolize.
std::atomic<int> g_violation_state{0};
void* g_violation_pcs[kHeapMaxFrames];
int g_violation_nframes = 0;
long long g_violation_size = 0;
const char* g_violation_site = nullptr;
char g_violation_thread[kFlightThreadNameCap] = {};

// ---- per-thread churn slots (sampler slot pattern) ----------------

struct HeapSlot
{
    std::atomic<int> state; // 0 free, 1 live, 2 retired
    char name[kFlightThreadNameCap];
    std::atomic<std::int64_t> allocBytes;
    std::atomic<std::int64_t> allocCount;
};

HeapSlot g_heap_slots[kHeapMaxThreads];
std::mutex g_heap_slot_mutex; // guards acquisition + names

thread_local HeapSlot* t_heap_slot = nullptr;

struct HeapSlotRetirer
{
    ~HeapSlotRetirer()
    {
        HeapSlot* slot = t_heap_slot;
        t_heap_slot = nullptr;
        if (slot != nullptr)
            slot->state.store(2, std::memory_order_release);
    }
};

/** Register the calling thread's churn slot.  Only reached with
 *  t_in_hook set, so the __cxa_thread_atexit allocation made by the
 *  retirer registration is never itself recorded. */
HeapSlot*
ensureHeapSlot()
{
    if (t_heap_slot != nullptr)
        return t_heap_slot;
    static thread_local HeapSlotRetirer retirer;
    (void)retirer;
    std::lock_guard<std::mutex> lock(g_heap_slot_mutex);
    HeapSlot* found = nullptr;
    for (auto& slot : g_heap_slots) {
        const int state = slot.state.load(std::memory_order_relaxed);
        if (state == 0 || state == 2) {
            found = &slot;
            break;
        }
    }
    if (found == nullptr)
        return nullptr;
    found->allocBytes.store(0, std::memory_order_relaxed);
    found->allocCount.store(0, std::memory_order_relaxed);
    const char* name = currentThreadFlightName();
    if (name[0] != '\0') {
        std::snprintf(found->name, sizeof found->name, "%s", name);
    } else {
        std::snprintf(found->name, sizeof found->name, "thread-%td",
                      found - g_heap_slots);
    }
    found->state.store(1, std::memory_order_release);
    t_heap_slot = found;
    return found;
}

// ---- aggregation (immortal: delete runs through static dtors) -----

/** Aggregation key: where the sampled bytes were allocated. */
struct HeapStackKey
{
    int pathId = 0;
    int kernel = -1;
    std::vector<std::uintptr_t> pcs;

    bool
    operator<(const HeapStackKey& o) const
    {
        if (pathId != o.pathId)
            return pathId < o.pathId;
        if (kernel != o.kernel)
            return kernel < o.kernel;
        return pcs < o.pcs;
    }
};

struct HeapWeight
{
    std::int64_t bytes = 0;
    std::int64_t count = 0;
};

using HeapAggMap = std::map<HeapStackKey, HeapWeight>;

std::mutex&
aggMutex()
{
    static std::mutex* m = new std::mutex;
    return *m;
}

HeapAggMap&
aggMap()
{
    static HeapAggMap* m = new HeapAggMap;
    return *m;
}

/** glibc's backtrace() dlopens libgcc (with malloc) on first use;
 *  run it once from normal context before any capture site needs
 *  it.  Idempotent, thread-safe via the static guard. */
void
warmBacktrace()
{
    static const bool warmed = [] {
        void* frames[4];
        backtrace(frames, 4);
        return true;
    }();
    (void)warmed;
}

/** log2 size-class bucket of an allocation request. */
std::size_t
sizeClassOf(std::size_t size)
{
    const std::size_t k = std::bit_width(size);
    return k < kHeapSizeClasses ? k : kHeapSizeClasses - 1;
}

/** Charge @p weight_bytes to the calling thread's current (span,
 *  kernel, stack).  Reached with t_in_hook set; allocation and
 *  locking are therefore fine here — sampling fires once per
 *  interval, not per allocation. */
void
takeSample(std::int64_t weight_bytes)
{
    HeapStackKey key;
    key.pathId = currentTracePathId();
    key.kernel = kernels::activeKernelSampleTag();
    // Three frames of plumbing sit on top of the allocating caller:
    // takeSample, heapOnAlloc and the replacement operator itself.
    void* pcs[kHeapMaxFrames + 3];
    const int n =
        backtrace(pcs, static_cast<int>(kHeapMaxFrames + 3));
    const int skip = n > 3 ? 3 : n;
    const int keep = n - skip;
    key.pcs.reserve(static_cast<std::size_t>(keep > 0 ? keep : 0));
    for (int i = 0; i < keep; ++i)
        key.pcs.push_back(
            reinterpret_cast<std::uintptr_t>(pcs[i + skip]));
    {
        std::lock_guard<std::mutex> lock(aggMutex());
        HeapWeight& w = aggMap()[std::move(key)];
        w.bytes += weight_bytes;
        w.count += 1;
    }
    g_samples.fetch_add(1, std::memory_order_relaxed);
    g_sampled_bytes.fetch_add(weight_bytes,
                              std::memory_order_relaxed);
}

/** Count a guarded-region violation; the first one process-wide also
 *  captures its backtrace for the reporting guard to symbolize. */
void
recordViolation(std::size_t size)
{
    g_guard_violations.fetch_add(1, std::memory_order_relaxed);
    int expected = 0;
    if (!g_violation_state.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel))
        return;
    g_violation_size = static_cast<long long>(size);
    g_violation_site = t_guard_site;
    std::snprintf(g_violation_thread, sizeof g_violation_thread, "%s",
                  currentThreadFlightName());
    void* pcs[kHeapMaxFrames + 3];
    const int n =
        backtrace(pcs, static_cast<int>(kHeapMaxFrames + 3));
    const int skip = n > 3 ? 3 : n;
    int keep = n - skip;
    if (keep > static_cast<int>(kHeapMaxFrames))
        keep = static_cast<int>(kHeapMaxFrames);
    for (int i = 0; i < keep; ++i)
        g_violation_pcs[i] = pcs[i + skip];
    g_violation_nframes = keep > 0 ? keep : 0;
    g_violation_state.store(2, std::memory_order_release);
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Kernel-family slug for a sample tag (-1 / out of range -> ""). */
const char*
kernelSlug(int tag)
{
    if (tag < 0 || tag >= static_cast<int>(kernels::kKernelCount))
        return "";
    return kernels::kernelCost(static_cast<kernels::KernelId>(tag))
        .slug;
}

/** "{run}" placeholder substitution (MRQ_TRACE_OUT contract). */
std::string
replaceRun(std::string path, const std::string& run)
{
    const std::string placeholder = "{run}";
    const std::size_t at = path.find(placeholder);
    if (at != std::string::npos)
        path.replace(at, placeholder.size(), run);
    return path;
}

std::int64_t
clampInterval(std::int64_t bytes)
{
    if (bytes < 4096)
        return 4096;
    if (bytes > (1LL << 30))
        return 1LL << 30;
    return bytes;
}

} // namespace

namespace detail {

void
heapOnAlloc(void* p, std::size_t size) noexcept
{
    if (p == nullptr)
        return;
    const int hooks = g_heap_hooks.load(std::memory_order_relaxed);
    if (hooks == 0)
        return;
    if (t_in_hook)
        return;
    t_in_hook = true;
    std::size_t charged = malloc_usable_size(p);
    if (charged == 0)
        charged = size;
    const std::int64_t bytes = static_cast<std::int64_t>(charged);
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
    const std::int64_t cur =
        g_current_bytes.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    while (cur > peak &&
           !g_peak_bytes.compare_exchange_weak(
               peak, cur, std::memory_order_relaxed)) {
    }
    g_size_class[sizeClassOf(size)].fetch_add(
        1, std::memory_order_relaxed);
    HeapSlot* slot = ensureHeapSlot();
    if (slot != nullptr) {
        slot->allocBytes.fetch_add(bytes, std::memory_order_relaxed);
        slot->allocCount.fetch_add(1, std::memory_order_relaxed);
    }
    if (t_guard_depth > 0)
        recordViolation(size);
    if ((hooks & 1) != 0) {
        t_accum_bytes += bytes;
        if (t_accum_bytes >=
            g_interval_bytes.load(std::memory_order_relaxed)) {
            takeSample(t_accum_bytes);
            t_accum_bytes = 0;
        }
    }
    t_in_hook = false;
}

void
heapOnFree(void* p) noexcept
{
    if (p == nullptr)
        return;
    if (g_heap_hooks.load(std::memory_order_relaxed) == 0)
        return;
    if (t_in_hook)
        return;
    t_in_hook = true;
    const std::int64_t bytes =
        static_cast<std::int64_t>(malloc_usable_size(p));
    g_free_count.fetch_add(1, std::memory_order_relaxed);
    g_free_bytes.fetch_add(bytes, std::memory_order_relaxed);
    // Frees of allocations made before arming drive this below zero;
    // readers clamp.
    g_current_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    t_in_hook = false;
}

HeapDumpCounters
heapDumpCounters() noexcept
{
    HeapDumpCounters c;
    const std::int64_t cur =
        g_current_bytes.load(std::memory_order_relaxed);
    c.currentBytes = cur > 0 ? cur : 0;
    c.peakBytes = g_peak_bytes.load(std::memory_order_relaxed);
    c.allocCount = g_alloc_count.load(std::memory_order_relaxed);
    c.allocBytes = g_alloc_bytes.load(std::memory_order_relaxed);
    c.freeCount = g_free_count.load(std::memory_order_relaxed);
    c.freeBytes = g_free_bytes.load(std::memory_order_relaxed);
    c.samples = g_samples.load(std::memory_order_relaxed);
    c.guardViolations =
        g_guard_violations.load(std::memory_order_relaxed);
    return c;
}

} // namespace detail

// ---- knobs / lifecycle --------------------------------------------

bool
heapProfilerEnabledFromEnv()
{
    return envTruthy("MRQ_HEAPPROF") || envSet("MRQ_HEAPPROF_OUT");
}

std::int64_t
heapProfilerIntervalBytes()
{
    return clampInterval(envLong("MRQ_HEAPPROF_INTERVAL",
                                 kHeapDefaultIntervalBytes));
}

std::string
heapOutPath()
{
    return envValue("MRQ_HEAPPROF_OUT", "");
}

bool
startHeapProfiler(std::int64_t interval_bytes)
{
    if (!heapInterpositionActive() || heapProfilerRunning())
        return false;
    warmBacktrace();
    (void)traceEnabled();
    (void)currentTracePathId();
    g_interval_bytes.store(interval_bytes > 0
                               ? clampInterval(interval_bytes)
                               : heapProfilerIntervalBytes(),
                           std::memory_order_relaxed);
    detail::g_heapprof_running.store(1, std::memory_order_relaxed);
    detail::g_heap_hooks.fetch_or(1, std::memory_order_relaxed);
    flightMark("heapprof.start",
               g_interval_bytes.load(std::memory_order_relaxed));
    return true;
}

bool
startHeapProfilerFromEnv()
{
    if (!heapProfilerEnabledFromEnv())
        return false;
    return startHeapProfiler();
}

void
stopHeapProfiler()
{
    if (!heapProfilerRunning())
        return;
    detail::g_heapprof_running.store(0, std::memory_order_relaxed);
    detail::g_heap_hooks.fetch_and(~1, std::memory_order_relaxed);
    flightMark("heapprof.stop", heapSampleCount());
}

std::int64_t
heapSampleCount()
{
    return g_samples.load(std::memory_order_relaxed);
}

std::int64_t
heapSampledBytes()
{
    return g_sampled_bytes.load(std::memory_order_relaxed);
}

void
resetHeapProfile()
{
    {
        std::lock_guard<std::mutex> lock(aggMutex());
        aggMap().clear();
    }
    g_samples.store(0, std::memory_order_relaxed);
    g_sampled_bytes.store(0, std::memory_order_relaxed);
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_alloc_bytes.store(0, std::memory_order_relaxed);
    g_free_count.store(0, std::memory_order_relaxed);
    g_free_bytes.store(0, std::memory_order_relaxed);
    for (auto& c : g_size_class)
        c.store(0, std::memory_order_relaxed);
    const std::int64_t cur =
        g_current_bytes.load(std::memory_order_relaxed);
    g_peak_bytes.store(cur > 0 ? cur : 0,
                       std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(g_heap_slot_mutex);
    for (auto& slot : g_heap_slots) {
        if (slot.state.load(std::memory_order_acquire) == 0)
            continue;
        slot.allocBytes.store(0, std::memory_order_relaxed);
        slot.allocCount.store(0, std::memory_order_relaxed);
    }
}

// ---- snapshots ----------------------------------------------------

HeapStats
heapStatsSnapshot()
{
    HeapStats s;
    const detail::HeapDumpCounters c = detail::heapDumpCounters();
    s.currentBytes = c.currentBytes;
    s.peakBytes = c.peakBytes;
    s.allocCount = c.allocCount;
    s.allocBytes = c.allocBytes;
    s.freeCount = c.freeCount;
    s.freeBytes = c.freeBytes;
    s.samples = c.samples;
    s.sampledBytes = heapSampledBytes();
    s.guardViolations = c.guardViolations;
    for (std::size_t i = 0; i < kHeapSizeClasses; ++i)
        s.sizeClass[i] =
            g_size_class[i].load(std::memory_order_relaxed);
    return s;
}

std::vector<HeapThreadChurn>
heapThreadChurn()
{
    std::map<std::string, HeapThreadChurn> merged;
    std::lock_guard<std::mutex> lock(g_heap_slot_mutex);
    for (auto& slot : g_heap_slots) {
        if (slot.state.load(std::memory_order_acquire) == 0)
            continue;
        HeapThreadChurn& c = merged[slot.name];
        c.name = slot.name;
        c.allocBytes +=
            slot.allocBytes.load(std::memory_order_relaxed);
        c.allocCount +=
            slot.allocCount.load(std::memory_order_relaxed);
    }
    std::vector<HeapThreadChurn> out;
    out.reserve(merged.size());
    for (auto& kv : merged)
        out.push_back(std::move(kv.second));
    return out;
}

std::vector<HeapStack>
heapStacks()
{
    HeapAggMap agg;
    {
        std::lock_guard<std::mutex> lock(aggMutex());
        // Copying the map allocates; a sample taken mid-copy would
        // re-enter aggMutex() on this thread and deadlock, so the
        // copy must run with the hook suppressed.
        const bool prev_in_hook = t_in_hook;
        t_in_hook = true;
        agg = aggMap();
        t_in_hook = prev_in_hook;
    }
    std::vector<HeapStack> out;
    out.reserve(agg.size());
    for (const auto& kv : agg) {
        HeapStack s;
        s.span = tracePathString(kv.first.pathId);
        s.kernel = kernelSlug(kv.first.kernel);
        s.bytes = kv.second.bytes;
        s.count = kv.second.count;
        s.frames.reserve(kv.first.pcs.size());
        for (std::uintptr_t pc : kv.first.pcs)
            s.frames.push_back(symbolizePc(pc));
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const HeapStack& a, const HeapStack& b) {
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  if (a.span != b.span)
                      return a.span < b.span;
                  if (a.kernel != b.kernel)
                      return a.kernel < b.kernel;
                  return a.frames < b.frames;
              });
    return out;
}

std::string
heapProfileJsonl()
{
    const std::vector<HeapStack> stacks = heapStacks();
    const std::vector<HeapThreadChurn> churn = heapThreadChurn();
    const HeapStats totals = heapStatsSnapshot();
    std::string out;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"type\": \"heap_profile\", \"version\": %d, "
                  "\"interval_bytes\": %lld, ",
                  kHeapProfileVersion,
                  static_cast<long long>(g_interval_bytes.load(
                      std::memory_order_relaxed)));
    out += buf;
    out += "\"isa\": \"" +
           jsonEscape(kernels::isaName(kernels::activeIsa())) +
           "\", \"git\": \"" + jsonEscape(buildGitDescribe()) + "\"";
    std::snprintf(
        buf, sizeof buf,
        ", \"samples\": %lld, \"sampled_bytes\": %lld, "
        "\"current_bytes\": %lld, \"peak_bytes\": %lld, "
        "\"alloc_count\": %lld, \"alloc_bytes\": %lld, "
        "\"free_count\": %lld, \"free_bytes\": %lld, "
        "\"guard_violations\": %lld}\n",
        static_cast<long long>(totals.samples),
        static_cast<long long>(totals.sampledBytes),
        static_cast<long long>(totals.currentBytes),
        static_cast<long long>(totals.peakBytes),
        static_cast<long long>(totals.allocCount),
        static_cast<long long>(totals.allocBytes),
        static_cast<long long>(totals.freeCount),
        static_cast<long long>(totals.freeBytes),
        static_cast<long long>(totals.guardViolations));
    out += buf;
    for (const HeapThreadChurn& t : churn) {
        out += "{\"type\": \"heap_thread\", \"thread\": \"" +
               jsonEscape(t.name) + "\"";
        std::snprintf(buf, sizeof buf,
                      ", \"alloc_bytes\": %lld, "
                      "\"alloc_count\": %lld}\n",
                      static_cast<long long>(t.allocBytes),
                      static_cast<long long>(t.allocCount));
        out += buf;
    }
    for (const HeapStack& s : stacks) {
        out += "{\"type\": \"alloc_stack\", \"span\": \"" +
               jsonEscape(s.span) + "\", \"kernel\": \"" +
               jsonEscape(s.kernel) + "\"";
        std::snprintf(buf, sizeof buf,
                      ", \"bytes\": %lld, \"count\": %lld, "
                      "\"frames\": [",
                      static_cast<long long>(s.bytes),
                      static_cast<long long>(s.count));
        out += buf;
        for (std::size_t i = 0; i < s.frames.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += "\"" + jsonEscape(s.frames[i]) + "\"";
        }
        out += "]}\n";
    }
    std::snprintf(buf, sizeof buf,
                  "{\"type\": \"heap_profile_end\", \"stacks\": "
                  "%zu, \"sampled_bytes\": %lld}\n",
                  stacks.size(),
                  static_cast<long long>(totals.sampledBytes));
    out += buf;
    return out;
}

std::string
heapFoldedStacks()
{
    const std::vector<HeapStack> stacks = heapStacks();
    std::map<std::string, std::int64_t> folded;
    for (const HeapStack& s : stacks) {
        std::string line;
        std::string span = s.span;
        std::size_t start = 0;
        while (start < span.size()) {
            std::size_t slash = span.find('/', start);
            if (slash == std::string::npos)
                slash = span.size();
            if (slash > start) {
                if (!line.empty())
                    line += ';';
                line += span.substr(start, slash - start);
            }
            start = slash + 1;
        }
        for (std::size_t i = s.frames.size(); i-- > 0;) {
            if (!line.empty())
                line += ';';
            line += s.frames[i];
        }
        if (line.empty())
            line = "??";
        folded[line] += s.bytes;
    }
    std::string out;
    char buf[32];
    for (const auto& kv : folded) {
        out += kv.first;
        std::snprintf(buf, sizeof buf, " %lld\n",
                      static_cast<long long>(kv.second));
        out += buf;
    }
    return out;
}

bool
writeHeapProfile(const std::string& path)
{
    if (path.empty())
        return false;
    AtomicFile af(path);
    std::FILE* f = af.stream();
    if (f == nullptr)
        return false;
    const std::string doc = heapProfileJsonl();
    if (!doc.empty())
        std::fwrite(doc.data(), 1, doc.size(), f);
    const bool clean = std::ferror(f) == 0;
    return af.commit() && clean;
}

bool
flushHeapProfile(const std::string& run)
{
    bool ok = true;
    const std::string out = heapOutPath();
    if (!out.empty())
        ok = writeHeapProfile(replaceRun(out, run)) && ok;
    const std::string folded = envValue("MRQ_HEAPPROF_FOLDED", "");
    if (!folded.empty()) {
        AtomicFile af(replaceRun(folded, run));
        std::FILE* f = af.stream();
        if (f == nullptr) {
            ok = false;
        } else {
            const std::string doc = heapFoldedStacks();
            if (!doc.empty())
                std::fwrite(doc.data(), 1, doc.size(), f);
            const bool clean = std::ferror(f) == 0;
            ok = (af.commit() && clean) && ok;
        }
    }
    return ok;
}

// ---- no-alloc guards ----------------------------------------------

AllocGuardMode
allocGuardModeFromEnv()
{
    const std::string v = envValue("MRQ_ALLOC_GUARD", "");
    if (v == "strict")
        return AllocGuardMode::Strict;
    if (truthy(v.c_str()))
        return AllocGuardMode::On;
    return AllocGuardMode::Off;
}

AllocGuardMode
allocGuardMode()
{
    int mode = g_guard_mode.load(std::memory_order_relaxed);
    if (mode < 0) {
        mode = static_cast<int>(allocGuardModeFromEnv());
        g_guard_mode.store(mode, std::memory_order_relaxed);
    }
    return static_cast<AllocGuardMode>(mode);
}

AllocGuardMode
setAllocGuardMode(AllocGuardMode mode)
{
    const AllocGuardMode prev = allocGuardMode();
    g_guard_mode.store(static_cast<int>(mode),
                       std::memory_order_relaxed);
    return prev;
}

std::int64_t
allocGuardViolationTotal()
{
    return g_guard_violations.load(std::memory_order_relaxed);
}

void
resetAllocGuardViolations()
{
    g_guard_violations.store(0, std::memory_order_relaxed);
    g_violation_state.store(0, std::memory_order_relaxed);
}

namespace {

/** Destructor-context violation reporting: watchdog alert + flight
 *  mark + counter; strict mode prints the captured backtrace and
 *  exits with the watchdog strict-fatal code. */
void
reportGuardViolations(const char* site, std::int64_t count,
                      AllocGuardMode mode)
{
    static Counter violation_counter("alloc_guard.violations");
    violation_counter.add(count);
    flightMark("alloc_guard.violation", count);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%lld allocation(s) inside no-alloc region",
                  static_cast<long long>(count));
    std::string detail = buf;
    const bool captured =
        g_violation_state.load(std::memory_order_acquire) == 2;
    if (captured && g_violation_nframes > 0) {
        std::snprintf(buf, sizeof buf, "; first: %lld bytes at ",
                      g_violation_size);
        detail += buf;
        detail += symbolizePc(reinterpret_cast<std::uintptr_t>(
            g_violation_pcs[0]));
    }
    if (metricsEnabled())
        MetricsRegistry::instance().recordAlert(
            mode == AllocGuardMode::Strict ? "fatal" : "warn",
            "alloc_guard", site, -1, detail);
    if (mode != AllocGuardMode::Strict)
        return;
    std::fprintf(stderr,
                 "mrq: alloc_guard: %lld allocation(s) inside "
                 "no-alloc region [%s]\n",
                 static_cast<long long>(count), site);
    if (captured) {
        std::fprintf(
            stderr, "mrq: alloc_guard: first violation: %lld bytes "
                    "on thread %s (site %s)\n",
            g_violation_size,
            g_violation_thread[0] != '\0' ? g_violation_thread
                                          : "unknown",
            g_violation_site != nullptr ? g_violation_site : site);
        for (int i = 0; i < g_violation_nframes; ++i) {
            const std::uintptr_t pc =
                reinterpret_cast<std::uintptr_t>(
                    g_violation_pcs[i]);
            std::fprintf(stderr, "mrq: alloc_guard:   #%d %s\n", i,
                         symbolizePc(pc).c_str());
        }
    }
    // std::exit skips the RunScope destructor; flush its sinks
    // first so the run that died still leaves its artifacts.
    flushActiveRunScope();
    std::exit(kAllocGuardExitCode);
}

} // namespace

AllocGuard::AllocGuard(const char* site, bool enable)
    : site_(site), prevSite_(t_guard_site)
{
    if (!enable || site == nullptr)
        return;
    if (allocGuardMode() == AllocGuardMode::Off)
        return;
    if (!heapInterpositionActive())
        return;
    warmBacktrace();
    entryViolations_ =
        g_guard_violations.load(std::memory_order_relaxed);
    ++t_guard_depth;
    t_guard_site = site;
    if (g_active_guards.fetch_add(1, std::memory_order_relaxed) == 0)
        detail::g_heap_hooks.fetch_or(2, std::memory_order_relaxed);
    active_ = true;
}

AllocGuard::~AllocGuard()
{
    if (!active_)
        return;
    --t_guard_depth;
    t_guard_site = prevSite_;
    if (g_active_guards.fetch_sub(1, std::memory_order_relaxed) == 1)
        detail::g_heap_hooks.fetch_and(~2,
                                       std::memory_order_relaxed);
    if (dismissed_)
        return;
    const std::int64_t got = violations();
    if (got > 0)
        reportGuardViolations(site_, got, allocGuardMode());
}

std::int64_t
AllocGuard::violations() const
{
    if (!active_)
        return 0;
    return g_guard_violations.load(std::memory_order_relaxed) -
           entryViolations_;
}

int
currentAllocGuardDepth()
{
    return t_guard_depth;
}

const char*
currentAllocGuardSite()
{
    return t_guard_site;
}

InheritedAllocGuard::InheritedAllocGuard(int depth, const char* site)
    : prevDepth_(t_guard_depth), prevSite_(t_guard_site)
{
    if (depth <= 0)
        return;
    if (allocGuardMode() == AllocGuardMode::Off)
        return;
    if (!heapInterpositionActive())
        return;
    t_guard_depth += depth;
    if (site != nullptr)
        t_guard_site = site;
    // The submitter's own AllocGuard normally keeps the hook bit
    // armed for the whole parallel region, but a worker can outlive
    // that window (or, in tests, run with no outer guard at all) —
    // hold an arm refcount of our own.
    if (g_active_guards.fetch_add(1, std::memory_order_relaxed) == 0)
        detail::g_heap_hooks.fetch_or(2, std::memory_order_relaxed);
    armed_ = true;
}

InheritedAllocGuard::~InheritedAllocGuard()
{
    if (!armed_)
        return;
    t_guard_depth = prevDepth_;
    t_guard_site = prevSite_;
    if (g_active_guards.fetch_sub(1, std::memory_order_relaxed) == 1)
        detail::g_heap_hooks.fetch_and(~2,
                                       std::memory_order_relaxed);
}

} // namespace obs
} // namespace mrq
