#include "obs/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/env.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace mrq {
namespace obs {

WatchdogMode
watchdogModeFromEnv()
{
    const char* v = envValue("MRQ_WATCHDOG", nullptr);
    if (v == nullptr)
        return WatchdogMode::off;
    auto lower = [](char c) {
        return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                    : c;
    };
    std::string s;
    for (const char* p = v; *p != '\0'; ++p)
        s.push_back(lower(*p));
    if (s == "strict")
        return WatchdogMode::strict;
    return truthy(v) ? WatchdogMode::on : WatchdogMode::off;
}

namespace {

/** Deterministic double rendering for alert details. */
std::string
formatValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

Watchdog::Watchdog()
{
    cfg_.mode = watchdogModeFromEnv();
}

Watchdog::Watchdog(const WatchdogConfig& config) : cfg_(config) {}

void
Watchdog::configure(const WatchdogConfig& config)
{
    cfg_ = config;
}

void
Watchdog::raise(const char* severity, const char* rule,
                const std::string& context, std::int64_t batch,
                const std::string& detail)
{
    ++alerts_;
    MetricsRegistry::instance().recordAlert(severity, rule, context,
                                            batch, detail);
    // Alert totals as live counters (deterministic: rules fire on
    // deterministic values), so the stats endpoint shows them without
    // waiting for the JSONL footer.
    MetricsRegistry::instance().addCounterNamed(
        std::string("watchdog.alerts.") + severity, 1);
    MetricsRegistry::instance().addCounterNamed(
        std::string("watchdog.rule.") + rule, 1);
    traceInstant(std::string("alert:") + rule, context + ": " + detail);
    logf("watchdog: [%s] %s at batch %lld (%s): %s", severity, rule,
         static_cast<long long>(batch), context.c_str(),
         detail.c_str());
    if (cfg_.mode == WatchdogMode::strict &&
        std::string(severity) == "fatal") {
        std::fprintf(stderr,
                     "mrq: watchdog: fatal alert [%s] at batch %lld "
                     "(%s): %s\n",
                     rule, static_cast<long long>(batch),
                     context.c_str(), detail.c_str());
        // std::exit skips the RunScope destructor; flush its sinks
        // first so the run that died still leaves its artifacts.
        flushActiveRunScope();
        std::exit(70);
    }
}

void
Watchdog::checkLoss(const std::string& context, std::int64_t batch,
                    double loss)
{
    if (!enabled())
        return;
    if (!std::isfinite(loss)) {
        raise("fatal", "nan_loss", context, batch,
              "loss=" + formatValue(loss));
        return;
    }
    std::deque<double>& window = lossWindows_[context];
    if (static_cast<int>(window.size()) >= cfg_.warmupBatches &&
        !window.empty()) {
        std::vector<double> sorted(window.begin(), window.end());
        const std::size_t mid = sorted.size() / 2;
        std::nth_element(sorted.begin(), sorted.begin() + mid,
                         sorted.end());
        const double median = sorted[mid];
        if (median > 0.0 && loss > cfg_.divergenceFactor * median)
            raise("warn", "loss_divergence", context, batch,
                  "loss=" + formatValue(loss) +
                      " median=" + formatValue(median) +
                      " factor=" + formatValue(cfg_.divergenceFactor));
    }
    window.push_back(loss);
    while (static_cast<int>(window.size()) > cfg_.medianWindow)
        window.pop_front();
}

void
Watchdog::checkRungMonotonicity(const std::string& context,
                                std::int64_t batch,
                                const std::vector<std::string>& names,
                                const std::vector<double>& metrics,
                                bool higher_is_better)
{
    if (!enabled() || metrics.size() < 2)
        return;
    const std::size_t n = std::min(names.size(), metrics.size());
    // Compare each rung against the best lower-budget rung so a
    // single dip flags once instead of cascading over every pair.
    double best = metrics[0];
    std::size_t best_i = 0;
    for (std::size_t i = 1; i < n; ++i) {
        const double gap = higher_is_better ? best - metrics[i]
                                            : metrics[i] - best;
        if (gap > cfg_.rungTolerance)
            raise("warn", "rung_inversion", context, batch,
                  "rung " + names[i] + "=" + formatValue(metrics[i]) +
                      " trails " + names[best_i] + "=" +
                      formatValue(best) + " by " + formatValue(gap) +
                      " (tol=" + formatValue(cfg_.rungTolerance) + ")");
        const bool improves = higher_is_better ? metrics[i] > best
                                               : metrics[i] < best;
        if (improves) {
            best = metrics[i];
            best_i = i;
        }
    }
}

void
Watchdog::checkCacheHitRate(const std::string& context,
                            std::int64_t batch, std::int64_t hits,
                            std::int64_t misses)
{
    if (!enabled())
        return;
    const std::int64_t lookups = hits + misses;
    if (lookups < cfg_.cacheMinLookups)
        return;
    const double rate = static_cast<double>(hits) /
                        static_cast<double>(lookups);
    if (rate < cfg_.cacheHitRateFloor)
        raise("warn", "cache_hit_rate_floor", context, batch,
              "hit_rate=" + formatValue(rate) + " (" +
                  std::to_string(hits) + "/" + std::to_string(lookups) +
                  ") floor=" + formatValue(cfg_.cacheHitRateFloor));
}

void
Watchdog::checkSqnr(const std::string& context, std::int64_t batch,
                    double sqnr_db)
{
    if (!enabled())
        return;
    std::deque<double>& window = sqnrWindows_[context];
    if (static_cast<int>(window.size()) >= cfg_.sqnrWarmup &&
        !window.empty()) {
        std::vector<double> sorted(window.begin(), window.end());
        const std::size_t mid = sorted.size() / 2;
        std::nth_element(sorted.begin(), sorted.begin() + mid,
                         sorted.end());
        const double median = sorted[mid];
        if (sqnr_db < median - cfg_.sqnrCollapseDb)
            raise("warn", "sqnr_collapse", context, batch,
                  "sqnr_db=" + formatValue(sqnr_db) +
                      " median=" + formatValue(median) +
                      " drop_db=" + formatValue(cfg_.sqnrCollapseDb));
    }
    window.push_back(sqnr_db);
    while (static_cast<int>(window.size()) > cfg_.sqnrWindow)
        window.pop_front();
}

void
Watchdog::checkSaturation(const std::string& context, std::int64_t batch,
                          double rate, std::int64_t samples)
{
    if (!enabled() || samples < cfg_.satMinSamples)
        return;
    if (rate > cfg_.satRateCeiling)
        raise("warn", "saturation_ceiling", context, batch,
              "rate=" + formatValue(rate) + " over " +
                  std::to_string(samples) +
                  " values, ceiling=" + formatValue(cfg_.satRateCeiling));
}

void
Watchdog::checkRungKl(const std::string& context, std::int64_t batch,
                      double kl)
{
    if (!enabled())
        return;
    if (!std::isfinite(kl) || kl > cfg_.rungKlFatal) {
        raise("fatal", "rung_kl_blowup", context, batch,
              "kl=" + formatValue(kl) +
                  " fatal_above=" + formatValue(cfg_.rungKlFatal));
        return;
    }
    if (kl > cfg_.rungKlWarn)
        raise("warn", "rung_kl_blowup", context, batch,
              "kl=" + formatValue(kl) +
                  " warn_above=" + formatValue(cfg_.rungKlWarn));
}

void
Watchdog::resetHistory()
{
    lossWindows_.clear();
    sqnrWindows_.clear();
    alerts_ = 0;
}

} // namespace obs
} // namespace mrq
