#include "obs/crash_handler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <mutex>
#include <thread>

#include "kernels/isa.hpp"
#include "obs/env.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heap_profiler.hpp"
#include "obs/manifest.hpp"
#include "obs/sigsafe.hpp"
#include "obs/stats_server.hpp"
#include "obs/watchdog.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>
#define MRQ_HAVE_CRASH_HANDLER 1
#endif

namespace mrq {
namespace obs {

#ifndef MRQ_HAVE_CRASH_HANDLER

bool
installCrashHandlers(const CrashHandlerConfig&)
{
    return false;
}

bool
installCrashHandlersFromEnv()
{
    return false;
}

bool
crashHandlersInstalled()
{
    return false;
}

void
setPostmortemManifest(const std::string&)
{
}

void
setPostmortemStatsLine(const char*)
{
}

void
heartbeat()
{
}

void
faultInjectionPoint(const char* site, std::int64_t index)
{
    flightMark(site, index);
}

std::size_t
writePostmortemNow(int, const char*)
{
    return 0;
}

void
blockShutdownSignalsInThisThread()
{
}

#else // MRQ_HAVE_CRASH_HANDLER

namespace {

// ---- Static handler-path state ------------------------------------
// Everything the signal handler reads lives in pre-sized statics; the
// only mutations from handler context are the once-flags.

constexpr std::size_t kPathCap = 512;
constexpr std::size_t kManifestCap = 4096;
constexpr std::size_t kStatsCap = 1024;
constexpr int kMaxFrames = 64;

char g_dump_path[kPathCap];
char g_usr1_path[kPathCap];
char g_git[128];
char g_isa[32];

/** Double-buffered pre-rendered lines: writers (RunScope, stats
 *  sampler) fill the inactive buffer under a mutex and flip the
 *  index; the handler reads the active buffer lock-free.  A torn
 *  read is impossible — the flip happens after the NUL is in place
 *  and a stale line is fine in a dump. */
std::mutex g_line_mutex;
char g_manifest_line[2][kManifestCap];
std::atomic<int> g_manifest_idx{-1};
char g_stats_line[2][kStatsCap];
std::atomic<int> g_stats_idx{-1};

std::atomic<int> g_installed{0};
std::atomic<int> g_dump_once{0};
std::atomic<int> g_graceful_once{0};
std::atomic<std::int64_t> g_heartbeat_ns{0};

// ---- Fault injection ----------------------------------------------

enum class FaultKind : int
{
    None = 0,
    Segv,
    Bus,
    Ill,
    Fpe,
    Abort,
    Terminate,
    Hang,
};

std::mutex g_cfg_mutex;
std::atomic<bool> g_fault_armed{false};
FaultKind g_fault_kind = FaultKind::None;
char g_fault_site[32];
std::int64_t g_fault_target = 0;
std::atomic<std::int64_t> g_fault_count{0};

std::int64_t
wallNowNs()
{
    timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 +
           ts.tv_nsec;
}

const char*
signalName(int sig)
{
    switch (sig) {
    case SIGSEGV:
        return "SIGSEGV";
    case SIGBUS:
        return "SIGBUS";
    case SIGILL:
        return "SIGILL";
    case SIGFPE:
        return "SIGFPE";
    case SIGABRT:
        return "SIGABRT";
    case SIGUSR1:
        return "SIGUSR1";
    case SIGINT:
        return "SIGINT";
    case SIGTERM:
        return "SIGTERM";
    }
    return "SIG?";
}

// ---- Dump writer (async-signal-safe) ------------------------------

/** Header + manifest + stats lines.  @p sig <= 0 means non-signal
 *  reason (terminate, hang, usr1); @p addr only for faults. */
std::size_t
writeDumpPrefix(int fd, const char* reason, int sig, const void* addr,
                const char* exception_type)
{
    std::size_t lines = 0;
    {
        char line[640];
        sigsafe::Buf out{line, sizeof line};
        out.put("{\"type\": \"postmortem\", \"version\": ");
        out.putInt(kPostmortemVersion);
        out.put(", \"reason\": \"");
        out.putJson(reason);
        out.put("\", \"pid\": ");
        out.putInt(static_cast<long long>(::getpid()));
        out.put(", \"unix_time\": ");
        out.putInt(wallNowNs() / 1000000000);
        out.put(", \"thread\": \"");
        const char* tname = currentThreadFlightName();
        out.putJson(tname[0] != '\0' ? tname : "unnamed");
        out.put("\", \"git\": \"");
        out.putJson(g_git);
        out.put("\", \"isa\": \"");
        out.putJson(g_isa);
        out.put("\", \"peak_rss_kb\": ");
        out.putInt(sigsafe::peakRssKb());
        if (sig > 0) {
            out.put(", \"signal\": \"");
            out.put(signalName(sig));
            out.put("\", \"signo\": ");
            out.putInt(sig);
            out.put(", \"fault_addr\": \"");
            out.putHex(reinterpret_cast<unsigned long long>(addr));
            out.put("\"");
        }
        if (exception_type != nullptr) {
            out.put(", \"exception_type\": \"");
            out.putJson(exception_type);
            out.put("\"");
        }
        out.put("}\n");
        if (!sigsafe::writeAll(fd, out))
            return lines;
        ++lines;
    }
    const int mi = g_manifest_idx.load(std::memory_order_acquire);
    if (mi >= 0) {
        const char* m = g_manifest_line[mi];
        if (sigsafe::writeAll(fd, m, std::strlen(m)))
            ++lines;
    }
    const int si = g_stats_idx.load(std::memory_order_acquire);
    if (si >= 0) {
        const char* s = g_stats_line[si];
        if (sigsafe::writeAll(fd, s, std::strlen(s)))
            ++lines;
    }
    return lines;
}

/** backtrace + dladdr frame lines; returns frames written.  dladdr
 *  has no malloc path on glibc/macOS and backtrace was warmed at
 *  install, so this stays handler-safe.  Symbols are left mangled —
 *  the demangler allocates; tools/mrq_postmortem.py prettifies. */
std::size_t
writeBacktrace(int fd)
{
    void* frames[kMaxFrames];
    const int n = ::backtrace(frames, kMaxFrames);
    std::size_t written = 0;
    for (int i = 0; i < n; ++i) {
        Dl_info info;
        const bool have = ::dladdr(frames[i], &info) != 0;
        char line[512];
        sigsafe::Buf out{line, sizeof line};
        out.put("{\"type\": \"frame\", \"index\": ");
        out.putInt(i);
        out.put(", \"pc\": \"");
        out.putHex(reinterpret_cast<unsigned long long>(frames[i]));
        out.put("\", \"symbol\": \"");
        out.putJson(have && info.dli_sname != nullptr ? info.dli_sname
                                                      : "?");
        out.put("\", \"object\": \"");
        out.putJson(have && info.dli_fname != nullptr ? info.dli_fname
                                                      : "?");
        out.put("\"}\n");
        if (!sigsafe::writeAll(fd, out))
            break;
        ++written;
    }
    return written;
}

std::size_t
writeDump(int fd, const char* reason, int sig, const void* addr,
          const char* exception_type)
{
    std::size_t lines =
        writeDumpPrefix(fd, reason, sig, addr, exception_type);
    if (heapInterpositionActive()) {
        // Heap digest: relaxed atomic loads only (handler-safe), so a
        // crash mid-allocation still reports coherent-enough totals.
        const detail::HeapDumpCounters h = detail::heapDumpCounters();
        char hline[384];
        sigsafe::Buf out{hline, sizeof hline};
        out.put("{\"type\": \"heap\", \"current_bytes\": ");
        out.putInt(h.currentBytes);
        out.put(", \"peak_bytes\": ");
        out.putInt(h.peakBytes);
        out.put(", \"alloc_count\": ");
        out.putInt(h.allocCount);
        out.put(", \"alloc_bytes\": ");
        out.putInt(h.allocBytes);
        out.put(", \"free_count\": ");
        out.putInt(h.freeCount);
        out.put(", \"free_bytes\": ");
        out.putInt(h.freeBytes);
        out.put(", \"samples\": ");
        out.putInt(h.samples);
        out.put(", \"guard_violations\": ");
        out.putInt(h.guardViolations);
        out.put("}\n");
        if (sigsafe::writeAll(fd, out))
            ++lines;
    }
    const std::size_t frames = writeBacktrace(fd);
    lines += frames;
    const std::size_t events = flightDrain(fd);
    lines += events;
    char line[128];
    sigsafe::Buf out{line, sizeof line};
    out.put("{\"type\": \"postmortem_end\", \"frames\": ");
    out.putUint(frames);
    out.put(", \"flight_events\": ");
    out.putUint(events);
    out.put("}\n");
    if (sigsafe::writeAll(fd, out))
        ++lines;
    return lines;
}

/** Open the artifact (stderr fallback); @p path may be "". */
int
openDumpFd(const char* path)
{
    if (path[0] == '\0')
        return 2;
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    return fd >= 0 ? fd : 2;
}

void
closeDumpFd(int fd)
{
    if (fd > 2) {
        ::fsync(fd);
        ::close(fd);
    }
}

void
stderrNote(const char* what, const char* path)
{
    char line[640];
    sigsafe::Buf out{line, sizeof line};
    out.put("mrq: ");
    out.put(what);
    if (path[0] != '\0') {
        out.put(" -> ");
        out.put(path);
    }
    out.put("\n");
    sigsafe::writeAll(2, out);
}

// ---- Signal handlers ----------------------------------------------

void
fatalHandler(int sig, siginfo_t* info, void*)
{
    if (g_dump_once.exchange(1, std::memory_order_acq_rel) == 0) {
        const void* addr =
            (sig == SIGSEGV || sig == SIGBUS) && info != nullptr
                ? info->si_addr
                : nullptr;
        const int fd = openDumpFd(g_dump_path);
        writeDump(fd, "signal", sig, addr, nullptr);
        closeDumpFd(fd);
        stderrNote("fatal signal, postmortem written", g_dump_path);
    }
    // Restore the default disposition and re-raise so the exit status
    // reflects the signal (wait4 callers, gtest death tests, shells).
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void
usr1Handler(int sig, siginfo_t*, void*)
{
    (void)sig;
    const int saved_errno = errno;
    const int fd = openDumpFd(g_usr1_path);
    writeDump(fd, "usr1", 0, nullptr, nullptr);
    closeDumpFd(fd);
    stderrNote("on-demand postmortem written", g_usr1_path);
    errno = saved_errno;
}

void
gracefulHandler(int sig, siginfo_t*, void*)
{
    // Restore defaults first: a second Ctrl-C kills immediately.
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    if (g_graceful_once.exchange(1, std::memory_order_acq_rel) != 0) {
        ::raise(sig);
        return;
    }
    stderrNote("caught shutdown signal, flushing sinks", "");
    // Deliberately past the letter of async-signal-safety: flushing
    // JSONL sinks takes locks and allocates.  This is a best-effort
    // trade — the alternative is always losing the telemetry — and
    // the atomic tmp+rename writers mean a wedged flush can at worst
    // leave the previous file intact.
    flushActiveRunScope();
    StatsPlane::instance().stop();
    std::_Exit(kGracefulExitCode);
}

[[noreturn]] void
terminateHandler()
{
    if (g_dump_once.exchange(1, std::memory_order_acq_rel) == 0) {
        const char* type_name = nullptr;
        if (std::type_info* t = abi::__cxa_current_exception_type())
            type_name = t->name();
        const int fd = openDumpFd(g_dump_path);
        writeDump(fd, "terminate", 0, nullptr, type_name);
        closeDumpFd(fd);
        stderrNote("std::terminate, postmortem written", g_dump_path);
    }
    // abort() raises SIGABRT; g_dump_once is already consumed so the
    // fatal handler just restores SIG_DFL and re-raises.
    std::abort();
}

// ---- Hang monitor --------------------------------------------------

/** Background heartbeat watcher.  Function-local singleton so the
 *  thread outlives every RunScope; the destructor joins at process
 *  exit (static destruction order is safe — the monitor only touches
 *  our own statics and the flight recorder's BSS). */
class HangMonitor
{
  public:
    static HangMonitor&
    instance()
    {
        static HangMonitor mon;
        return mon;
    }

    void
    arm(long after_ms, bool strict)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        afterMs_ = after_ms;
        strict_ = strict;
        fired_ = false;
        if (afterMs_ > 0 && !thread_.joinable())
            thread_ = std::thread([this] { loop(); });
        cv_.notify_all();
    }

    ~HangMonitor()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

  private:
    void
    loop()
    {
        blockShutdownSignalsInThisThread();
        // The watchdog is bookkeeping, not workload — keep the
        // sampler's SIGPROF away so hang dumps never race a sample.
        {
            sigset_t set;
            sigemptyset(&set);
            sigaddset(&set, SIGPROF);
            ::pthread_sigmask(SIG_BLOCK, &set, nullptr);
        }
        setCurrentThreadName("mrq-watchdog");
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            long after = afterMs_;
            long poll = after > 0 ? after / 4 : 50;
            if (poll < 10)
                poll = 10;
            if (poll > 200)
                poll = 200;
            cv_.wait_for(lock, std::chrono::milliseconds(poll));
            if (stop_)
                return;
            after = afterMs_;
            if (after <= 0)
                continue;
            const std::int64_t last =
                g_heartbeat_ns.load(std::memory_order_relaxed);
            if (last == 0)
                continue; // Nothing beating yet: not a stall.
            const std::int64_t stall_ns = wallNowNs() - last;
            if (stall_ns <= after * 1000000)
                continue;
            if (strict_) {
                lock.unlock();
                const int fd = openDumpFd(g_dump_path);
                writeDump(fd, "hang", 0, nullptr, nullptr);
                closeDumpFd(fd);
                stderrNote("heartbeat stall, postmortem written; "
                           "strict mode exits 70",
                           g_dump_path);
                flushActiveRunScope();
                std::_Exit(kHangExitCode);
            }
            if (!fired_) {
                fired_ = true;
                lock.unlock();
                const int fd = openDumpFd(g_dump_path);
                writeDump(fd, "hang", 0, nullptr, nullptr);
                closeDumpFd(fd);
                stderrNote("heartbeat stall, postmortem written",
                           g_dump_path);
                lock.lock();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    long afterMs_ = 0;
    bool strict_ = false;
    bool fired_ = false;
    bool stop_ = false;
};

// ---- Fault injection ----------------------------------------------

void
injectFault(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Segv: {
        // A small non-null misaligned-enough-to-be-unmapped address:
        // UBSan instruments plain null stores (and would report
        // instead of faulting), so poke address 8.
        volatile int* p = reinterpret_cast<volatile int*>(8);
        *p = 42;
        break;
    }
    case FaultKind::Bus:
        ::raise(SIGBUS);
        break;
    case FaultKind::Ill:
        ::raise(SIGILL);
        break;
    case FaultKind::Fpe:
        // raise() instead of a real divide: UBSan intercepts integer
        // division by zero before the CPU traps.
        ::raise(SIGFPE);
        break;
    case FaultKind::Abort:
        std::abort();
    case FaultKind::Terminate:
        std::terminate();
    case FaultKind::Hang: {
        // Stop heartbeating forever; the hang monitor (or an outer
        // timeout) decides what happens next.
        timespec ts{0, 50 * 1000 * 1000};
        for (;;)
            ::nanosleep(&ts, nullptr);
    }
    case FaultKind::None:
        break;
    }
}

/** Parse "<kind>@<site>:<n>" under g_cfg_mutex; disarms on any
 *  malformed spec. */
void
configureFault(const std::string& spec)
{
    std::lock_guard<std::mutex> lock(g_cfg_mutex);
    g_fault_armed.store(false, std::memory_order_release);
    g_fault_kind = FaultKind::None;
    g_fault_site[0] = '\0';
    g_fault_target = 0;
    g_fault_count.store(0, std::memory_order_relaxed);
    if (spec.empty())
        return;
    const std::size_t at = spec.find('@');
    const std::size_t colon = spec.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon <= at + 1) {
        std::fprintf(stderr, "mrq: ignoring malformed MRQ_FAULT '%s' "
                             "(want <kind>@<site>:<n>)\n",
                     spec.c_str());
        return;
    }
    const std::string kind = spec.substr(0, at);
    const std::string site = spec.substr(at + 1, colon - at - 1);
    FaultKind parsed = FaultKind::None;
    if (kind == "segv")
        parsed = FaultKind::Segv;
    else if (kind == "bus")
        parsed = FaultKind::Bus;
    else if (kind == "ill")
        parsed = FaultKind::Ill;
    else if (kind == "fpe")
        parsed = FaultKind::Fpe;
    else if (kind == "abort")
        parsed = FaultKind::Abort;
    else if (kind == "terminate")
        parsed = FaultKind::Terminate;
    else if (kind == "hang")
        parsed = FaultKind::Hang;
    char* end = nullptr;
    const long n = std::strtol(spec.c_str() + colon + 1, &end, 10);
    if (parsed == FaultKind::None || end == spec.c_str() + colon + 1 ||
        *end != '\0' || n < 0 || site.empty() ||
        site.size() >= sizeof g_fault_site) {
        std::fprintf(stderr, "mrq: ignoring malformed MRQ_FAULT '%s' "
                             "(want <kind>@<site>:<n>)\n",
                     spec.c_str());
        return;
    }
    g_fault_kind = parsed;
    std::memcpy(g_fault_site, site.c_str(), site.size() + 1);
    g_fault_target = n;
    g_fault_armed.store(true, std::memory_order_release);
}

void
copyPath(char* dst, std::size_t cap, const std::string& src)
{
    std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.c_str(), n);
    dst[n] = '\0';
}

} // namespace

bool
installCrashHandlers(const CrashHandlerConfig& config)
{
    {
        std::lock_guard<std::mutex> lock(g_cfg_mutex);
        if (config.dumpDir.empty()) {
            g_dump_path[0] = '\0';
            g_usr1_path[0] = '\0';
        } else {
            std::error_code ec;
            std::filesystem::create_directories(config.dumpDir, ec);
            const std::string pid = std::to_string(::getpid());
            copyPath(g_dump_path, sizeof g_dump_path,
                     config.dumpDir + "/postmortem." + pid + ".jsonl");
            copyPath(g_usr1_path, sizeof g_usr1_path,
                     config.dumpDir + "/postmortem." + pid +
                         ".usr1.jsonl");
        }
        copyPath(g_git, sizeof g_git, buildGitDescribe());
        copyPath(g_isa, sizeof g_isa,
                 kernels::isaName(kernels::activeIsa()));
    }
    configureFault(config.fault);

    int expected = 0;
    if (g_installed.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
        // Warm backtrace(): glibc dlopens libgcc (with malloc) on the
        // first call, which must not happen inside a handler.
        void* warm[4];
        (void)::backtrace(warm, 4);

        static char altstack_mem[64 * 1024];
        stack_t altstack;
        altstack.ss_sp = altstack_mem;
        altstack.ss_size = sizeof altstack_mem;
        altstack.ss_flags = 0;
        ::sigaltstack(&altstack, nullptr);

        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sigemptyset(&sa.sa_mask);
        // The sampling profiler's SIGPROF must never interrupt a dump
        // handler mid-write: the dump machinery is signal-safe but not
        // reentrant against a sampler poking the same thread_locals.
        sigaddset(&sa.sa_mask, SIGPROF);
        sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
        sa.sa_sigaction = fatalHandler;
        for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
            ::sigaction(sig, &sa, nullptr);

        sa.sa_sigaction = usr1Handler;
        sa.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_RESTART;
        ::sigaction(SIGUSR1, &sa, nullptr);

        sa.sa_sigaction = gracefulHandler;
        sa.sa_flags = SA_SIGINFO;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);

        std::set_terminate(terminateHandler);

        if (currentThreadFlightName()[0] == '\0')
            setCurrentThreadName("main");
        flightMark("crash_handler.install");
    }

    if (config.hangAfterMs > 0)
        HangMonitor::instance().arm(config.hangAfterMs,
                                    config.strictHang);
    heartbeat();
    return true;
}

bool
installCrashHandlersFromEnv()
{
    // Opt-out knob: MRQ_CRASH_HANDLER=0/off leaves default
    // dispositions (a debugger or embedding process wants its own).
    if (const char* v = envValue("MRQ_CRASH_HANDLER", nullptr))
        if (!truthy(v))
            return false;
    CrashHandlerConfig cfg;
    cfg.dumpDir = envValue("MRQ_POSTMORTEM_DIR", "");
    cfg.fault = envValue("MRQ_FAULT", "");
    cfg.hangAfterMs = envLong("MRQ_HANG_AFTER", 0);
    cfg.strictHang = watchdogModeFromEnv() == WatchdogMode::strict;
    return installCrashHandlers(cfg);
}

bool
crashHandlersInstalled()
{
    return g_installed.load(std::memory_order_acquire) != 0;
}

void
setPostmortemManifest(const std::string& manifestLine)
{
    std::lock_guard<std::mutex> lock(g_line_mutex);
    const int next =
        (g_manifest_idx.load(std::memory_order_relaxed) + 1) & 1;
    std::size_t n = manifestLine.size() < kManifestCap - 2
                        ? manifestLine.size()
                        : kManifestCap - 2;
    std::memcpy(g_manifest_line[next], manifestLine.c_str(), n);
    if (n == 0 || g_manifest_line[next][n - 1] != '\n')
        g_manifest_line[next][n++] = '\n';
    g_manifest_line[next][n] = '\0';
    g_manifest_idx.store(next, std::memory_order_release);
}

void
setPostmortemStatsLine(const char* statsLine)
{
    if (statsLine == nullptr)
        return;
    std::lock_guard<std::mutex> lock(g_line_mutex);
    const int next =
        (g_stats_idx.load(std::memory_order_relaxed) + 1) & 1;
    std::size_t n = std::strlen(statsLine);
    if (n > kStatsCap - 2)
        n = kStatsCap - 2;
    std::memcpy(g_stats_line[next], statsLine, n);
    if (n == 0 || g_stats_line[next][n - 1] != '\n')
        g_stats_line[next][n++] = '\n';
    g_stats_line[next][n] = '\0';
    g_stats_idx.store(next, std::memory_order_release);
}

void
heartbeat()
{
    g_heartbeat_ns.store(wallNowNs(), std::memory_order_relaxed);
}

void
faultInjectionPoint(const char* site, std::int64_t index)
{
    heartbeat();
    flightMark(site, index);
    if (!g_fault_armed.load(std::memory_order_acquire))
        return;
    // Armed is rare (tests/CI only), so the strcmp sits behind the
    // acquire load and costs nothing in production.
    if (std::strcmp(site, g_fault_site) != 0)
        return;
    // <n> counts visits of the site, not the index value: "epoch:2"
    // fires on the third epoch boundary the process reaches, which
    // stays deterministic across pipelines that interleave loops.
    const std::int64_t n =
        g_fault_count.fetch_add(1, std::memory_order_relaxed);
    if (n == g_fault_target) {
        std::fprintf(stderr, "mrq: MRQ_FAULT injecting at %s:%lld "
                             "(index %lld)\n",
                     site, static_cast<long long>(n),
                     static_cast<long long>(index));
        std::fflush(stderr);
        injectFault(g_fault_kind);
    }
}

std::size_t
writePostmortemNow(int fd, const char* reason)
{
    // Keep the sampler's SIGPROF out of the dump: the dump writer is
    // signal-safe but shares sigsafe buffers with nothing else, and a
    // sample interrupting it would land inside the dump frames.
    sigset_t block, previous;
    sigemptyset(&block);
    sigaddset(&block, SIGPROF);
    ::pthread_sigmask(SIG_BLOCK, &block, &previous);
    const std::size_t n = writeDump(fd, reason, 0, nullptr, nullptr);
    ::pthread_sigmask(SIG_SETMASK, &previous, nullptr);
    return n;
}

void
blockShutdownSignalsInThisThread()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGUSR1);
    ::pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

#endif // MRQ_HAVE_CRASH_HANDLER

} // namespace obs
} // namespace mrq
