#include "obs/profile.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "obs/atomic_file.hpp"
#include "obs/env.hpp"

namespace mrq {
namespace obs {

bool
profileEnabled()
{
    static const bool enabled = envTruthy("MRQ_PROFILE");
    return enabled;
}

namespace {

struct Node
{
    std::string path;
    std::string name;
    std::int64_t count = 0;
    std::int64_t totalNs = 0;
    std::vector<std::size_t> children; ///< Indices into the node pool.
};

/** Find-or-create the node for @p path, synthesizing ancestors. */
std::size_t
nodeFor(const std::string& path, std::vector<Node>* pool,
        std::map<std::string, std::size_t>* index,
        std::vector<std::size_t>* roots)
{
    auto it = index->find(path);
    if (it != index->end())
        return it->second;
    const std::size_t slash = path.rfind('/');
    Node node;
    node.path = path;
    node.name = slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t id = pool->size();
    pool->push_back(std::move(node));
    index->emplace(path, id);
    if (slash == std::string::npos) {
        roots->push_back(id);
    } else {
        const std::size_t parent =
            nodeFor(path.substr(0, slash), pool, index, roots);
        (*pool)[parent].children.push_back(id);
    }
    return id;
}

void
emit(const std::vector<Node>& pool, std::size_t id, int depth,
     std::int64_t parent_total, std::vector<ProfileEntry>* out)
{
    const Node& node = pool[id];
    ProfileEntry entry;
    entry.path = node.path;
    entry.name = node.name;
    entry.depth = depth;
    entry.count = node.count;
    entry.totalNs = node.totalNs;
    std::int64_t child_total = 0;
    for (std::size_t c : node.children)
        child_total += pool[c].totalNs;
    // Children of a parallel region can sum past the parent's wall
    // time (they ran concurrently); clamp rather than report
    // negative self time.
    entry.selfNs = std::max<std::int64_t>(0, node.totalNs - child_total);
    entry.pctOfParent =
        parent_total > 0 ? 100.0 * static_cast<double>(node.totalNs) /
                               static_cast<double>(parent_total)
                         : 100.0;
    out->push_back(std::move(entry));

    std::vector<std::size_t> order = node.children;
    std::sort(order.begin(), order.end(),
              [&pool](std::size_t a, std::size_t b) {
                  if (pool[a].totalNs != pool[b].totalNs)
                      return pool[a].totalNs > pool[b].totalNs;
                  return pool[a].name < pool[b].name;
              });
    for (std::size_t c : order)
        emit(pool, c, depth + 1, node.totalNs, out);
}

} // namespace

std::vector<ProfileEntry>
buildProfile(const Snapshot& snap)
{
    static const std::string prefix = "span:";
    std::vector<Node> pool;
    std::map<std::string, std::size_t> index;
    std::vector<std::size_t> roots;

    for (const auto& t : snap.timings) {
        if (t.name.rfind(prefix, 0) != 0)
            continue;
        const std::size_t id =
            nodeFor(t.name.substr(prefix.size()), &pool, &index, &roots);
        pool[id].count = t.t.count;
        pool[id].totalNs = t.t.totalNs;
    }

    std::sort(roots.begin(), roots.end(),
              [&pool](std::size_t a, std::size_t b) {
                  if (pool[a].totalNs != pool[b].totalNs)
                      return pool[a].totalNs > pool[b].totalNs;
                  return pool[a].name < pool[b].name;
              });
    std::vector<ProfileEntry> out;
    for (std::size_t r : roots)
        emit(pool, r, 0, 0, &out);
    return out;
}

void
writeProfileReport(std::FILE* out,
                   const std::vector<ProfileEntry>& entries)
{
    if (entries.empty())
        return;
    std::fprintf(out, "---- mrq profile (total | self | calls | "
                      "%%parent) ----\n");
    for (const ProfileEntry& e : entries) {
        std::string label(static_cast<std::size_t>(e.depth) * 2, ' ');
        label += e.name;
        std::fprintf(out, "  %-44s %10.3fms %10.3fms %8lld %6.1f%%\n",
                     label.c_str(),
                     static_cast<double>(e.totalNs) * 1e-6,
                     static_cast<double>(e.selfNs) * 1e-6,
                     static_cast<long long>(e.count), e.pctOfParent);
    }
    std::fprintf(out, "------------------------------------------\n");
}

std::string
foldedStacks(const std::vector<ProfileEntry>& entries)
{
    std::string out;
    for (const ProfileEntry& e : entries) {
        if (e.selfNs <= 0)
            continue;
        std::string frames = e.path;
        std::replace(frames.begin(), frames.end(), '/', ';');
        out += frames;
        out += ' ';
        out += std::to_string(e.selfNs);
        out += '\n';
    }
    return out;
}

void
flushProfile(std::FILE* out)
{
    if (!profileEnabled())
        return;
    const std::vector<ProfileEntry> entries =
        buildProfile(MetricsRegistry::instance().snapshot());
    writeProfileReport(out, entries);
    if (const char* path = envValue("MRQ_PROFILE_OUT", nullptr)) {
        AtomicFile af(path);
        std::FILE* f = af.stream();
        if (f == nullptr) {
            std::fprintf(stderr, "mrq: profile: cannot write %s\n",
                         path);
            return;
        }
        const std::string folded = foldedStacks(entries);
        std::fwrite(folded.data(), 1, folded.size(), f);
        if (!af.commit())
            std::fprintf(stderr, "mrq: profile: cannot write %s\n",
                         path);
    }
}

} // namespace obs
} // namespace mrq
