#include "obs/exposition.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "kernels/roofline.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_export.hpp"

namespace mrq {
namespace obs {

namespace {

/** Mangle a metric name into the Prometheus charset ([a-zA-Z0-9_]). */
std::string
promName(const std::string& name)
{
    std::string out = "mrq_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Escape a Prometheus label value / JSON string body. */
std::string
escaped(const std::string& v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            if (static_cast<unsigned char>(c) >= 0x20)
                out.push_back(c);
        }
    }
    return out;
}

void
appendf(std::string& s, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendf(std::string& s, const char* fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    if (n > 0)
        s.append(buf, std::min(static_cast<std::size_t>(n),
                               sizeof buf - 1));
}

/** Roofline view of one kernel family, derived from the snapshot. */
struct KernelRow
{
    const kernels::KernelCost* cost = nullptr;
    std::int64_t elems = 0;
    std::int64_t timeNs = 0; ///< 0 = no timed region (hw-sim kernels).

    double
    flops() const
    {
        return static_cast<double>(elems) * cost->flopsPerElem;
    }
    double
    achievedGflops() const
    {
        // GFLOP/s == flops / ns.
        return timeNs > 0 ? flops() / static_cast<double>(timeNs) : 0.0;
    }
    double
    intensity() const
    {
        return cost->bytesPerElem > 0.0
                   ? cost->flopsPerElem / cost->bytesPerElem
                   : 0.0;
    }
};

std::vector<KernelRow>
kernelRows(const Snapshot& m)
{
    std::vector<KernelRow> rows;
    for (std::size_t i = 0; i < kernels::kKernelCount; ++i) {
        const kernels::KernelCost& cost =
            kernels::kernelCost(static_cast<kernels::KernelId>(i));
        KernelRow row;
        row.cost = &cost;
        const std::string counter =
            std::string("kernel.") + cost.slug + ".elems";
        const std::string timing = std::string("kernel.") + cost.slug;
        for (const auto& c : m.counters)
            if (c.name == counter)
                row.elems = c.value;
        for (const auto& t : m.timings)
            if (t.name == timing)
                row.timeNs = t.t.totalNs;
        if (row.elems > 0)
            rows.push_back(row);
    }
    return rows;
}

} // namespace

StatsSnapshot
collectStatsSnapshot()
{
    StatsSnapshot s;
    s.metrics = MetricsRegistry::instance().snapshot();
    s.proc = readProcStats();
    s.perf = perfTotalsSnapshot();
    s.isa = kernels::activeIsa();
    s.traceDropped = static_cast<std::int64_t>(traceDroppedEvents());
    s.threadNames = flightThreadNames();
    s.threadTime = threadTimeBreakdown();
    s.profilerRunning = samplerRunning();
    s.profilerSamples = samplerSampleCount();
    s.profilerDropped = samplerDroppedSamples();
    s.heapInterposed = heapInterpositionActive();
    s.heapProfilerRunning = heapProfilerRunning();
    s.heap = heapStatsSnapshot();
    s.heapChurn = heapThreadChurn();
    return s;
}

std::string
renderPrometheus(const StatsSnapshot& s)
{
    std::string out;
    out.reserve(4096);

    for (const auto& c : s.metrics.counters) {
        const std::string n = promName(c.name) + "_total";
        appendf(out, "# TYPE %s counter\n", n.c_str());
        appendf(out, "%s %" PRId64 "\n", n.c_str(), c.value);
    }
    for (const auto& g : s.metrics.gauges) {
        const std::string n = promName(g.name);
        appendf(out, "# TYPE %s gauge\n", n.c_str());
        appendf(out, "%s %.17g\n", n.c_str(), g.value);
    }
    for (const auto& h : s.metrics.histograms) {
        const std::string n = promName(h.name);
        appendf(out, "# TYPE %s histogram\n", n.c_str());
        std::int64_t cum = 0;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            cum += h.counts[b];
            if (b + 1 == h.counts.size())
                appendf(out, "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                        n.c_str(), cum);
            else
                appendf(out, "%s_bucket{le=\"%zu\"} %" PRId64 "\n",
                        n.c_str(), b, cum);
        }
        appendf(out, "%s_sum %" PRId64 "\n", n.c_str(), h.weighted);
        appendf(out, "%s_count %" PRId64 "\n", n.c_str(), h.total);
    }
    for (const auto& t : s.metrics.timings) {
        const std::string n = promName(t.name);
        appendf(out, "# TYPE %s_seconds_total counter\n", n.c_str());
        appendf(out, "%s_seconds_total %.9f\n", n.c_str(),
                static_cast<double>(t.t.totalNs) * 1e-9);
        appendf(out, "# TYPE %s_calls_total counter\n", n.c_str());
        appendf(out, "%s_calls_total %" PRId64 "\n", n.c_str(),
                t.t.count);
    }

    // Process resources.
    if (s.proc.rssKb >= 0) {
        appendf(out, "# TYPE mrq_process_resident_memory_kb gauge\n");
        appendf(out, "mrq_process_resident_memory_kb %" PRId64 "\n",
                s.proc.rssKb);
    }
    if (s.proc.peakRssKb >= 0) {
        appendf(out,
                "# TYPE mrq_process_peak_resident_memory_kb gauge\n");
        appendf(out, "mrq_process_peak_resident_memory_kb %" PRId64 "\n",
                s.proc.peakRssKb);
    }
    if (s.proc.threads >= 0) {
        appendf(out, "# TYPE mrq_process_threads gauge\n");
        appendf(out, "mrq_process_threads %" PRId64 "\n", s.proc.threads);
    }
    if (s.proc.cpuSeconds >= 0.0) {
        appendf(out, "# TYPE mrq_process_cpu_seconds_total counter\n");
        appendf(out, "mrq_process_cpu_seconds_total %.6f\n",
                s.proc.cpuSeconds);
    }

    // Watchdog / trace-ring totals.
    appendf(out, "# TYPE mrq_watchdog_alerts gauge\n");
    appendf(out, "mrq_watchdog_alerts %zu\n", s.metrics.alerts.size());
    appendf(out, "# TYPE mrq_trace_dropped_events gauge\n");
    appendf(out, "mrq_trace_dropped_events %" PRId64 "\n",
            s.traceDropped);
    appendf(out, "# TYPE mrq_stats_samples_total counter\n");
    appendf(out, "mrq_stats_samples_total %" PRId64 "\n", s.samples);
    if (!s.threadNames.empty()) {
        appendf(out, "# TYPE mrq_thread_info gauge\n");
        for (const std::string& name : s.threadNames)
            appendf(out, "mrq_thread_info{name=\"%s\"} 1\n",
                    escaped(name).c_str());
    }

    // Sampling profiler: per-thread wall-clock decomposition plus
    // capture totals.
    appendf(out, "# TYPE mrq_sampler_running gauge\n");
    appendf(out, "mrq_sampler_running %d\n", s.profilerRunning ? 1 : 0);
    appendf(out, "# TYPE mrq_sampler_samples_total counter\n");
    appendf(out, "mrq_sampler_samples_total %" PRId64 "\n",
            s.profilerSamples);
    appendf(out, "# TYPE mrq_sampler_dropped_total counter\n");
    appendf(out, "mrq_sampler_dropped_total %" PRId64 "\n",
            s.profilerDropped);
    if (!s.threadTime.empty()) {
        appendf(out,
                "# TYPE mrq_thread_time_seconds_total counter\n");
        for (const ThreadTime& t : s.threadTime) {
            const std::string name = escaped(t.name);
            appendf(out,
                    "mrq_thread_time_seconds_total{thread=\"%s\","
                    "state=\"busy\"} %.9f\n",
                    name.c_str(),
                    static_cast<double>(t.busyNs) * 1e-9);
            appendf(out,
                    "mrq_thread_time_seconds_total{thread=\"%s\","
                    "state=\"queue_wait\"} %.9f\n",
                    name.c_str(),
                    static_cast<double>(t.queueWaitNs) * 1e-9);
            appendf(out,
                    "mrq_thread_time_seconds_total{thread=\"%s\","
                    "state=\"idle\"} %.9f\n",
                    name.c_str(),
                    static_cast<double>(t.idleNs) * 1e-9);
        }
    }

    // Heap accounting (replacement operator new/delete).
    appendf(out, "# TYPE mrq_heap_interposed gauge\n");
    appendf(out, "mrq_heap_interposed %d\n", s.heapInterposed ? 1 : 0);
    appendf(out, "# TYPE mrq_heap_profiler_running gauge\n");
    appendf(out, "mrq_heap_profiler_running %d\n",
            s.heapProfilerRunning ? 1 : 0);
    appendf(out, "# TYPE mrq_heap_current_bytes gauge\n");
    appendf(out, "mrq_heap_current_bytes %" PRId64 "\n",
            s.heap.currentBytes);
    appendf(out, "# TYPE mrq_heap_peak_bytes gauge\n");
    appendf(out, "mrq_heap_peak_bytes %" PRId64 "\n", s.heap.peakBytes);
    appendf(out, "# TYPE mrq_heap_alloc_total counter\n");
    appendf(out, "mrq_heap_alloc_total %" PRId64 "\n",
            s.heap.allocCount);
    appendf(out, "# TYPE mrq_heap_alloc_bytes_total counter\n");
    appendf(out, "mrq_heap_alloc_bytes_total %" PRId64 "\n",
            s.heap.allocBytes);
    appendf(out, "# TYPE mrq_heap_free_total counter\n");
    appendf(out, "mrq_heap_free_total %" PRId64 "\n", s.heap.freeCount);
    appendf(out, "# TYPE mrq_heap_samples_total counter\n");
    appendf(out, "mrq_heap_samples_total %" PRId64 "\n", s.heap.samples);
    appendf(out, "# TYPE mrq_heap_guard_violations_total counter\n");
    appendf(out, "mrq_heap_guard_violations_total %" PRId64 "\n",
            s.heap.guardViolations);
    if (s.heap.allocCount > 0) {
        appendf(out, "# TYPE mrq_heap_alloc_size_class_total counter\n");
        for (std::size_t k = 0; k < kHeapSizeClasses; ++k)
            if (s.heap.sizeClass[k] > 0)
                appendf(out,
                        "mrq_heap_alloc_size_class_total{le_log2=\"%zu\"}"
                        " %" PRId64 "\n",
                        k, s.heap.sizeClass[k]);
    }
    if (!s.heapChurn.empty()) {
        appendf(out, "# TYPE mrq_heap_thread_alloc_bytes_total counter\n");
        appendf(out, "# TYPE mrq_heap_thread_alloc_total counter\n");
        for (const HeapThreadChurn& t : s.heapChurn) {
            const std::string name = escaped(t.name);
            appendf(out,
                    "mrq_heap_thread_alloc_bytes_total{thread=\"%s\"} "
                    "%" PRId64 "\n",
                    name.c_str(), t.allocBytes);
            appendf(out,
                    "mrq_heap_thread_alloc_total{thread=\"%s\"} %" PRId64
                    "\n",
                    name.c_str(), t.allocCount);
        }
    }

    // Hardware counter side store.
    const struct
    {
        const char* name;
        std::int64_t PerfTotals::* field;
    } perf_fields[] = {
        {"cycles", &PerfTotals::cycles},
        {"instructions", &PerfTotals::instructions},
        {"cache_misses", &PerfTotals::cacheMisses},
        {"branch_misses", &PerfTotals::branchMisses},
        {"scopes", &PerfTotals::scopes},
    };
    if (!s.perf.empty()) {
        for (const auto& f : perf_fields)
            appendf(out, "# TYPE mrq_perf_%s_total counter\n", f.name);
        for (const auto& [scope, totals] : s.perf)
            for (const auto& f : perf_fields)
                appendf(out,
                        "mrq_perf_%s_total{scope=\"%s\"} %" PRId64 "\n",
                        f.name, escaped(scope).c_str(), totals.*f.field);
    }

    // Kernel roofline derivations.
    const char* isa = kernels::isaName(s.isa);
    appendf(out, "# TYPE mrq_kernel_peak_flops_per_cycle gauge\n");
    appendf(out,
            "mrq_kernel_peak_flops_per_cycle{isa=\"%s\"} %.1f\n", isa,
            kernels::peakFlopsPerCycle(s.isa));
    const std::vector<KernelRow> rows = kernelRows(s.metrics);
    if (!rows.empty()) {
        appendf(out, "# TYPE mrq_kernel_flops_total counter\n");
        appendf(out, "# TYPE mrq_kernel_arith_intensity gauge\n");
        appendf(out, "# TYPE mrq_kernel_achieved_gflops gauge\n");
        for (const KernelRow& r : rows) {
            appendf(out,
                    "mrq_kernel_flops_total{kernel=\"%s\",isa=\"%s\"} "
                    "%.0f\n",
                    r.cost->slug, isa, r.flops());
            appendf(out,
                    "mrq_kernel_arith_intensity{kernel=\"%s\",isa=\"%s\"}"
                    " %.6f\n",
                    r.cost->slug, isa, r.intensity());
            if (r.timeNs > 0)
                appendf(out,
                        "mrq_kernel_achieved_gflops{kernel=\"%s\","
                        "isa=\"%s\"} %.6f\n",
                        r.cost->slug, isa, r.achievedGflops());
        }
    }
    return out;
}

std::string
renderStatsJson(const StatsSnapshot& s)
{
    std::string out = "{";
    appendf(out, "\"version\":%d", kStatsSchemaVersion);
    appendf(out, ",\"isa\":\"%s\"", kernels::isaName(s.isa));
    appendf(out, ",\"samples\":%" PRId64, s.samples);
    out += ",\"thread_names\":[";
    for (std::size_t i = 0; i < s.threadNames.size(); ++i)
        appendf(out, "%s\"%s\"", i ? "," : "",
                escaped(s.threadNames[i]).c_str());
    out += "]";
    appendf(out,
            ",\"proc\":{\"rss_kb\":%" PRId64 ",\"peak_rss_kb\":%" PRId64
            ",\"threads\":%" PRId64 ",\"cpu_seconds\":%.6f}",
            s.proc.rssKb, s.proc.peakRssKb, s.proc.threads,
            s.proc.cpuSeconds);

    out += ",\"counters\":{";
    for (std::size_t i = 0; i < s.metrics.counters.size(); ++i) {
        const auto& c = s.metrics.counters[i];
        appendf(out, "%s\"%s\":%" PRId64, i ? "," : "",
                escaped(c.name).c_str(), c.value);
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < s.metrics.gauges.size(); ++i) {
        const auto& g = s.metrics.gauges[i];
        appendf(out, "%s\"%s\":%.17g", i ? "," : "",
                escaped(g.name).c_str(), g.value);
    }
    out += "},\"timings\":{";
    for (std::size_t i = 0; i < s.metrics.timings.size(); ++i) {
        const auto& t = s.metrics.timings[i];
        appendf(out,
                "%s\"%s\":{\"count\":%" PRId64 ",\"total_ns\":%" PRId64
                "}",
                i ? "," : "", escaped(t.name).c_str(), t.t.count,
                t.t.totalNs);
    }
    out += "},\"perf\":{";
    for (std::size_t i = 0; i < s.perf.size(); ++i) {
        const auto& [scope, t] = s.perf[i];
        appendf(out,
                "%s\"%s\":{\"scopes\":%" PRId64 ",\"cycles\":%" PRId64
                ",\"instructions\":%" PRId64 ",\"cache_misses\":%" PRId64
                ",\"branch_misses\":%" PRId64 "}",
                i ? "," : "", escaped(scope).c_str(), t.scopes, t.cycles,
                t.instructions, t.cacheMisses, t.branchMisses);
    }
    out += "},\"kernels\":[";
    const std::vector<KernelRow> rows = kernelRows(s.metrics);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const KernelRow& r = rows[i];
        appendf(out,
                "%s{\"name\":\"%s\",\"elems\":%" PRId64
                ",\"flops_per_elem\":%.3f,\"bytes_per_elem\":%.3f,"
                "\"arith_intensity\":%.6f,\"time_ns\":%" PRId64
                ",\"achieved_gflops\":%.6f}",
                i ? "," : "", r.cost->slug, r.elems, r.cost->flopsPerElem,
                r.cost->bytesPerElem, r.intensity(), r.timeNs,
                r.achievedGflops());
    }
    out += "],\"thread_time\":{";
    for (std::size_t i = 0; i < s.threadTime.size(); ++i) {
        const ThreadTime& t = s.threadTime[i];
        appendf(out,
                "%s\"%s\":{\"busy_ns\":%" PRId64
                ",\"queue_wait_ns\":%" PRId64 ",\"idle_ns\":%" PRId64
                "}",
                i ? "," : "", escaped(t.name).c_str(), t.busyNs,
                t.queueWaitNs, t.idleNs);
    }
    appendf(out,
            "},\"sampler\":{\"running\":%s,\"samples\":%" PRId64
            ",\"dropped\":%" PRId64 "}",
            s.profilerRunning ? "true" : "false", s.profilerSamples,
            s.profilerDropped);
    appendf(out,
            ",\"heap\":{\"interposed\":%s,\"running\":%s,"
            "\"current_bytes\":%" PRId64 ",\"peak_bytes\":%" PRId64
            ",\"alloc_count\":%" PRId64 ",\"alloc_bytes\":%" PRId64
            ",\"free_count\":%" PRId64 ",\"free_bytes\":%" PRId64
            ",\"samples\":%" PRId64 ",\"sampled_bytes\":%" PRId64
            ",\"guard_violations\":%" PRId64,
            s.heapInterposed ? "true" : "false",
            s.heapProfilerRunning ? "true" : "false",
            s.heap.currentBytes, s.heap.peakBytes, s.heap.allocCount,
            s.heap.allocBytes, s.heap.freeCount, s.heap.freeBytes,
            s.heap.samples, s.heap.sampledBytes,
            s.heap.guardViolations);
    out += ",\"size_class\":[";
    for (std::size_t k = 0; k < kHeapSizeClasses; ++k)
        appendf(out, "%s%" PRId64, k ? "," : "", s.heap.sizeClass[k]);
    out += "],\"threads\":{";
    for (std::size_t i = 0; i < s.heapChurn.size(); ++i) {
        const HeapThreadChurn& t = s.heapChurn[i];
        appendf(out,
                "%s\"%s\":{\"alloc_bytes\":%" PRId64
                ",\"alloc_count\":%" PRId64 "}",
                i ? "," : "", escaped(t.name).c_str(), t.allocBytes,
                t.allocCount);
    }
    out += "}}";
    appendf(out,
            ",\"peak_flops_per_cycle\":%.1f,\"alerts\":%zu,"
            "\"trace_dropped\":%" PRId64 "}",
            kernels::peakFlopsPerCycle(s.isa), s.metrics.alerts.size(),
            s.traceDropped);
    return out;
}

} // namespace obs
} // namespace mrq
