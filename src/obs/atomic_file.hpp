/**
 * @file
 * Crash-safe file writes for the JSONL/report sinks.
 *
 * Every offline sink (metrics, inspector, timeline, profile, bench
 * report) used to fopen its destination and stream into it; a crash
 * mid-flush left a truncated, unparseable file where the previous
 * good one had been.  AtomicFile moves the whole write to
 * `<path>.tmp` and only renames over the destination in commit(),
 * after fflush + fsync — so at any instant the destination is either
 * the old complete file or the new complete file, never a torn one.
 *
 * Append semantics ("several runs stack blocks in one file") are
 * preserved by preloading the existing destination bytes into the tmp
 * file before handing out the stream.
 *
 * Usage at a converted call site:
 *
 *     AtomicFile af(path, append);
 *     std::FILE* f = af.stream();
 *     if (f == nullptr) { ...report...; return false; }
 *     ...existing fprintf body unchanged...
 *     const bool clean = std::ferror(f) == 0;
 *     return af.commit() && clean;
 *
 * Destruction without commit() discards the tmp file and leaves the
 * destination untouched.
 */

#ifndef MRQ_OBS_ATOMIC_FILE_HPP
#define MRQ_OBS_ATOMIC_FILE_HPP

#include <cstdio>
#include <string>

namespace mrq {
namespace obs {

class AtomicFile
{
  public:
    /** Open `<path>.tmp` for writing (creating parent directories);
     *  with @p append, first copy the current contents of @p path
     *  into it. */
    explicit AtomicFile(std::string path, bool append = false);

    /** Discards the tmp file when commit() was never called. */
    ~AtomicFile();

    AtomicFile(const AtomicFile&) = delete;
    AtomicFile& operator=(const AtomicFile&) = delete;

    /** Stream to write through; nullptr when the tmp open failed. */
    std::FILE*
    stream() const
    {
        return stream_;
    }

    explicit operator bool() const { return stream_ != nullptr; }

    /** fflush + fsync + close + rename onto the destination.  False
     *  on any failure (the destination is then left as it was). */
    bool commit();

  private:
    std::string path_;
    std::string tmpPath_;
    std::FILE* stream_ = nullptr;
    bool committed_ = false;
};

} // namespace obs
} // namespace mrq

#endif // MRQ_OBS_ATOMIC_FILE_HPP
