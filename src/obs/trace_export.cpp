#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/atomic_file.hpp"
#include "obs/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mrq {
namespace obs {

namespace detail {

std::atomic<bool> g_trace_export_enabled{envSet("MRQ_TRACE_OUT")};

} // namespace detail

bool
setTraceExportEnabled(bool on)
{
    return detail::g_trace_export_enabled.exchange(
        on, std::memory_order_relaxed);
}

std::string
traceExportPath()
{
    return std::string(envValue("MRQ_TRACE_OUT", ""));
}

namespace {

/** One completed span; ~40 bytes, so a default ring is ~1.3 MB. */
struct SpanEvent
{
    std::int64_t startNs = 0;
    std::int64_t endNs = 0;
    std::int64_t arg = -1;
    int pathId = 0;
};

/** Drop-oldest ring written by exactly one thread. */
struct Ring
{
    std::vector<SpanEvent> buf; ///< Fixed capacity (buf.size()).
    std::uint64_t writes = 0;   ///< Total pushes since last reset.
};

struct CounterSample
{
    std::string track;
    double value = 0.0;
    std::int64_t ns = 0;
};

struct InstantEvent
{
    std::string name;
    std::string detail;
    std::int64_t ns = 0;
};

constexpr std::size_t kDefaultRingCapacity = 1u << 15;

std::size_t
initialRingCapacity()
{
    const long n = envLong("MRQ_TRACE_RING", 0);
    if (n > 0)
        return static_cast<std::size_t>(n);
    return kDefaultRingCapacity;
}

/**
 * Owns every ring so events survive worker-thread exit (e.g. across
 * ThreadPool::resize).  The mutex guards ring creation and the serial
 * side buffers; pushes into an existing ring are lock-free.  Serial
 * maintenance (reset, capacity change, flush reads) relies on
 * thread-pool quiescence for the happens-before edge, exactly like
 * MetricsRegistry::reset() over its shards.
 */
struct RingTable
{
    std::mutex mutex;
    std::vector<std::unique_ptr<Ring>> rings;
    std::size_t capacity = initialRingCapacity();
    std::vector<CounterSample> counters;
    std::vector<InstantEvent> instants;

    Ring&
    threadRing()
    {
        thread_local struct Slot
        {
            RingTable* owner = nullptr;
            Ring* ring = nullptr;
        } slot;
        if (slot.owner != this) {
            std::lock_guard<std::mutex> lock(mutex);
            auto ring = std::make_unique<Ring>();
            ring->buf.resize(capacity);
            slot.ring = ring.get();
            slot.owner = this;
            rings.push_back(std::move(ring));
        }
        return *slot.ring;
    }
};

RingTable&
table()
{
    static RingTable tbl;
    return tbl;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** Nanoseconds -> trace-event microseconds with sub-µs precision. */
std::string
formatUs(std::int64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    return buf;
}

/** A rendered trace event plus its sort key. */
struct Rendered
{
    std::int64_t ns = 0;
    std::string json;
};

} // namespace

void
traceExportSpan(int path_id, std::int64_t start_ns, std::int64_t end_ns,
                std::int64_t arg)
{
    if (!traceExportEnabled())
        return;
    Ring& ring = table().threadRing();
    SpanEvent& slot = ring.buf[ring.writes % ring.buf.size()];
    slot.startNs = start_ns;
    slot.endNs = end_ns;
    slot.arg = arg;
    slot.pathId = path_id;
    ++ring.writes;
}

void
traceCounterSample(const char* track, double value)
{
    if (!traceExportEnabled())
        return;
    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);
    tbl.counters.push_back(CounterSample{track, value, nowNs()});
}

void
traceInstant(const std::string& name, const std::string& detail)
{
    if (!traceExportEnabled())
        return;
    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);
    tbl.instants.push_back(InstantEvent{name, detail, nowNs()});
}

bool
writeTrace(const std::string& path)
{
    // Resolve interned paths first: the path table and ring table are
    // separate locks and this ordering never nests them.
    const std::vector<std::string> paths = traceAllPaths();

    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);

    // Rebase timestamps to the earliest event so "ts" values start
    // near zero (absolute steady_clock readings are unwieldy in
    // trace viewers).
    std::int64_t base = std::numeric_limits<std::int64_t>::max();
    std::uint64_t dropped = 0;
    for (const auto& ring : tbl.rings) {
        const std::uint64_t cap = ring->buf.size();
        const std::uint64_t kept =
            std::min<std::uint64_t>(ring->writes, cap);
        dropped += ring->writes - kept;
        for (std::uint64_t i = ring->writes - kept; i < ring->writes;
             ++i)
            base = std::min(base, ring->buf[i % cap].startNs);
    }
    for (const CounterSample& c : tbl.counters)
        base = std::min(base, c.ns);
    for (const InstantEvent& i : tbl.instants)
        base = std::min(base, i.ns);
    if (base == std::numeric_limits<std::int64_t>::max())
        base = 0;

    // Surface ring overflow on the live stats endpoint.  Recorded at
    // flush time, which every sink-ordering puts *after* the
    // deterministic snapshots (RunScope writes JSONL first, the bench
    // harness snapshots before flushing traces), so the possibly
    // thread-schedule-dependent drop count never reaches them.
    if (dropped > 0 && metricsEnabled())
        MetricsRegistry::instance().addCounterNamed(
            "trace.dropped_events", static_cast<std::int64_t>(dropped));

    std::vector<Rendered> events;
    char buf[256];

    for (std::size_t t = 0; t < tbl.rings.size(); ++t) {
        const Ring& ring = *tbl.rings[t];
        const std::uint64_t cap = ring.buf.size();
        const std::uint64_t kept = std::min<std::uint64_t>(ring.writes,
                                                           cap);
        for (std::uint64_t i = ring.writes - kept; i < ring.writes;
             ++i) {
            const SpanEvent& e = ring.buf[i % cap];
            const std::string& full =
                static_cast<std::size_t>(e.pathId) < paths.size()
                    ? paths[static_cast<std::size_t>(e.pathId)]
                    : paths[0];
            const std::size_t slash = full.rfind('/');
            const std::string name = slash == std::string::npos
                                         ? full
                                         : full.substr(slash + 1);
            std::string json = "{\"name\": \"" + jsonEscape(name) +
                               "\", \"cat\": \"span\", \"ph\": \"X\", "
                               "\"pid\": 1, \"tid\": " +
                               std::to_string(t) + ", \"ts\": ";
            json += formatUs(e.startNs - base);
            json += ", \"dur\": ";
            json += formatUs(e.endNs - e.startNs);
            json += ", \"args\": {\"path\": \"" + jsonEscape(full) +
                    "\"";
            if (e.arg >= 0) {
                std::snprintf(buf, sizeof(buf), ", \"arg\": %lld",
                              static_cast<long long>(e.arg));
                json += buf;
            }
            json += "}}";
            events.push_back(Rendered{e.startNs, std::move(json)});
        }
    }

    for (const CounterSample& c : tbl.counters) {
        std::snprintf(buf, sizeof(buf), "%.17g", c.value);
        events.push_back(Rendered{
            c.ns, "{\"name\": \"" + jsonEscape(c.track) +
                      "\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, "
                      "\"ts\": " +
                      formatUs(c.ns - base) +
                      ", \"args\": {\"value\": " + buf + "}}"});
    }

    for (const InstantEvent& i : tbl.instants)
        events.push_back(Rendered{
            i.ns, "{\"name\": \"" + jsonEscape(i.name) +
                      "\", \"cat\": \"alert\", \"ph\": \"i\", "
                      "\"pid\": 1, \"tid\": 0, \"ts\": " +
                      formatUs(i.ns - base) + ", \"s\": \"p\", "
                      "\"args\": {\"detail\": \"" +
                      jsonEscape(i.detail) + "\"}}"});

    std::stable_sort(events.begin(), events.end(),
                     [](const Rendered& a, const Rendered& b) {
                         return a.ns < b.ns;
                     });

    AtomicFile af(path);
    std::FILE* f = af.stream();
    if (f == nullptr) {
        std::fprintf(stderr, "mrq: trace: cannot write %s\n",
                     path.c_str());
        return false;
    }

    std::fprintf(f, "{\"displayTimeUnit\": \"ms\",\n");
    std::fprintf(f,
                 "\"otherData\": {\"droppedEvents\": \"%llu\", "
                 "\"threads\": \"%zu\"},\n",
                 static_cast<unsigned long long>(dropped),
                 tbl.rings.size());
    std::fprintf(f, "\"traceEvents\": [\n");
    std::fprintf(f, "{\"name\": \"process_name\", \"ph\": \"M\", "
                    "\"pid\": 1, \"args\": {\"name\": \"mrq\"}}");
    for (std::size_t t = 0; t < tbl.rings.size(); ++t) {
        const std::string thread_name =
            t == 0 ? "main" : "worker-" + std::to_string(t);
        std::fprintf(f,
                     ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
                     "\"pid\": 1, \"tid\": %zu, \"args\": {\"name\": "
                     "\"%s\"}}",
                     t, thread_name.c_str());
    }
    for (const Rendered& e : events)
        std::fprintf(f, ",\n%s", e.json.c_str());
    std::fprintf(f, "\n]}\n");
    const bool ok = std::ferror(f) == 0;
    return af.commit() && ok;
}

void
resetTraceBuffers()
{
    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);
    for (const auto& ring : tbl.rings)
        ring->writes = 0;
    tbl.counters.clear();
    tbl.instants.clear();
}

std::uint64_t
traceDroppedEvents()
{
    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);
    std::uint64_t dropped = 0;
    for (const auto& ring : tbl.rings)
        if (ring->writes > ring->buf.size())
            dropped += ring->writes - ring->buf.size();
    return dropped;
}

std::uint64_t
traceBufferedEvents()
{
    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);
    std::uint64_t kept = 0;
    for (const auto& ring : tbl.rings)
        kept += std::min<std::uint64_t>(ring->writes, ring->buf.size());
    return kept;
}

void
setTraceRingCapacity(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    RingTable& tbl = table();
    std::lock_guard<std::mutex> lock(tbl.mutex);
    tbl.capacity = capacity;
    for (const auto& ring : tbl.rings) {
        ring->buf.assign(capacity, SpanEvent{});
        ring->writes = 0;
    }
}

} // namespace obs
} // namespace mrq
