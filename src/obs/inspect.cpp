#include "obs/inspect.hpp"

#include <cmath>
#include <cstdio>

#include "obs/atomic_file.hpp"
#include "obs/env.hpp"
#include "obs/watchdog.hpp"

namespace mrq {
namespace obs {

namespace detail {
std::atomic<bool> g_inspect_sampling{false};
} // namespace detail

namespace {

/** Layer id the hooks in fake_quant.cpp attribute records to.  A
 *  plain int: written and read only from serial code (the layer-level
 *  forward/backward path), never from pool workers. */
int g_current_layer = -1;

/** Deterministic double rendering (matches the metrics sink). */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

const char*
kindName(InspectKind kind)
{
    switch (kind) {
    case InspectKind::WeightSqnr:
        return "weight_sqnr";
    case InspectKind::ActSqnr:
        return "act_sqnr";
    case InspectKind::ClipSat:
        return "clip_sat";
    case InspectKind::TermEnergy:
        return "term_energy";
    case InspectKind::GradNorm:
        return "grad_norm";
    case InspectKind::RungAgree:
        return "rung_agree";
    }
    return "unknown";
}

std::string
renderRecord(const InspectRecord& r)
{
    std::string line = "{\"type\": \"inspect\", \"kind\": \"";
    line += kindName(r.kind);
    line += "\", \"step\": " + std::to_string(r.step);
    line += std::string(", \"phase\": \"") + r.phase + "\"";
    line += ", \"layer\": \"" + jsonEscape(r.layer) + "\"";
    line += ", \"rung\": \"" + jsonEscape(r.rung) + "\"";
    switch (r.kind) {
    case InspectKind::WeightSqnr:
    case InspectKind::ActSqnr:
        line += ", \"sqnr_db\": " + formatDouble(r.v0);
        line += ", \"n\": " + std::to_string(r.n);
        break;
    case InspectKind::ClipSat:
        line += ", \"clip\": " + formatDouble(r.v0);
        line += ", \"saturated\": " + std::to_string(r.i0);
        line += ", \"n\": " + std::to_string(r.n);
        line += ", \"rate\": " +
                formatDouble(r.n > 0 ? static_cast<double>(r.i0) /
                                           static_cast<double>(r.n)
                                     : 0.0);
        break;
    case InspectKind::TermEnergy:
        line += ", \"kept_mass\": " + std::to_string(r.i0);
        line += ", \"dropped_mass\": " + std::to_string(r.i1);
        line += ", \"kept_terms\": " + std::to_string(r.i2);
        line += ", \"dropped_terms\": " + std::to_string(r.i3);
        line += ", \"n\": " + std::to_string(r.n);
        break;
    case InspectKind::GradNorm:
        line += ", \"l2\": " + formatDouble(r.v0);
        line += ", \"n\": " + std::to_string(r.n);
        break;
    case InspectKind::RungAgree:
        line += ", \"ref\": \"" + jsonEscape(r.ref) + "\"";
        line += ", \"kl\": " + formatDouble(r.v0);
        line += ", \"top1\": " + formatDouble(r.v1);
        line += ", \"n\": " + std::to_string(r.n);
        break;
    }
    line += "}\n";
    return line;
}

} // namespace

double
sqnrDb(double signal_power, double noise_power)
{
    constexpr double eps = 1e-30;
    return 10.0 * std::log10((signal_power + eps) / (noise_power + eps));
}

QuantInspector::QuantInspector()
{
    enabled_ = envTruthy("MRQ_INSPECT") || envSet("MRQ_INSPECT_OUT");
    const long every = envLong("MRQ_INSPECT_EVERY", 1);
    every_ = every > 0 ? every : 1;
}

QuantInspector&
QuantInspector::instance()
{
    static QuantInspector inspector;
    return inspector;
}

bool
QuantInspector::setEnabled(bool on)
{
    const bool prev = enabled_;
    enabled_ = on;
    if (!on)
        detail::g_inspect_sampling.store(false,
                                         std::memory_order_relaxed);
    return prev;
}

std::int64_t
QuantInspector::setEvery(std::int64_t every)
{
    const std::int64_t prev = every_;
    every_ = every > 0 ? every : 1;
    return prev;
}

std::string
QuantInspector::outPath() const
{
    return envValue("MRQ_INSPECT_OUT", "inspect.jsonl");
}

void
QuantInspector::beginStep(std::int64_t step)
{
    step_ = step;
    phase_ = "train";
    const bool sample = enabled_ && step % every_ == 0;
    detail::g_inspect_sampling.store(sample, std::memory_order_relaxed);
}

void
QuantInspector::endStep()
{
    detail::g_inspect_sampling.store(false, std::memory_order_relaxed);
}

int
QuantInspector::registerLayer(const char* kind_hint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int id = static_cast<int>(layers_.size());
    layers_.push_back(std::string(kind_hint) + "#" + std::to_string(id));
    return id;
}

std::string
QuantInspector::layerName(int id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || static_cast<std::size_t>(id) >= layers_.size())
        return "anon";
    return layers_[static_cast<std::size_t>(id)];
}

void
QuantInspector::record(InspectRecord r)
{
    r.step = phase_[0] == 'e' ? -1 : step_;
    r.phase = phase_;
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::move(r));
}

void
QuantInspector::recordWeightSqnr(int layer, const std::string& rung,
                                 double sqnr_db, std::int64_t n)
{
    InspectRecord r;
    r.kind = InspectKind::WeightSqnr;
    r.layer = layerName(layer);
    r.rung = rung;
    r.v0 = sqnr_db;
    r.n = n;
    record(std::move(r));
}

void
QuantInspector::recordActSqnr(int layer, const std::string& rung,
                              double sqnr_db, std::int64_t n)
{
    InspectRecord r;
    r.kind = InspectKind::ActSqnr;
    r.layer = layerName(layer);
    r.rung = rung;
    r.v0 = sqnr_db;
    r.n = n;
    record(std::move(r));
}

void
QuantInspector::recordClipSat(int layer, const std::string& rung,
                              double clip, std::int64_t saturated,
                              std::int64_t total)
{
    InspectRecord r;
    r.kind = InspectKind::ClipSat;
    r.layer = layerName(layer);
    r.rung = rung;
    r.v0 = clip;
    r.i0 = saturated;
    r.n = total;
    record(std::move(r));
}

void
QuantInspector::recordTermEnergy(int layer, const std::string& rung,
                                 std::int64_t kept_mass,
                                 std::int64_t dropped_mass,
                                 std::int64_t kept_terms,
                                 std::int64_t dropped_terms,
                                 std::int64_t values)
{
    InspectRecord r;
    r.kind = InspectKind::TermEnergy;
    r.layer = layerName(layer);
    r.rung = rung;
    r.i0 = kept_mass;
    r.i1 = dropped_mass;
    r.i2 = kept_terms;
    r.i3 = dropped_terms;
    r.n = values;
    record(std::move(r));
}

void
QuantInspector::recordGradNorm(const std::string& param,
                               const std::string& rung, double l2,
                               std::int64_t n)
{
    InspectRecord r;
    r.kind = InspectKind::GradNorm;
    r.layer = param;
    r.rung = rung;
    r.v0 = l2;
    r.n = n;
    record(std::move(r));
}

void
QuantInspector::recordRungAgreement(const std::string& context,
                                    const std::string& rung,
                                    const std::string& ref, double kl,
                                    double top1, std::int64_t rows)
{
    InspectRecord r;
    r.kind = InspectKind::RungAgree;
    r.layer = context;
    r.rung = rung;
    r.ref = ref;
    r.v0 = kl;
    r.v1 = top1;
    r.n = rows;
    record(std::move(r));
}

void
QuantInspector::feedWatchdog(Watchdog& watchdog, std::int64_t batch)
{
    // Copy the undrained tail under the lock, run the rules outside
    // it: raise() records alerts and may flush sinks.
    std::vector<InspectRecord> tail;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tail.assign(records_.begin() +
                        static_cast<std::ptrdiff_t>(drained_),
                    records_.end());
        drained_ = records_.size();
    }
    for (const InspectRecord& r : tail) {
        const std::string context = r.layer + "/" + r.rung;
        switch (r.kind) {
        case InspectKind::WeightSqnr:
        case InspectKind::ActSqnr:
            watchdog.checkSqnr(context, batch, r.v0);
            break;
        case InspectKind::ClipSat:
            watchdog.checkSaturation(
                context, batch,
                r.n > 0 ? static_cast<double>(r.i0) /
                              static_cast<double>(r.n)
                        : 0.0,
                r.n);
            break;
        case InspectKind::RungAgree:
            watchdog.checkRungKl(context, batch, r.v0);
            break;
        case InspectKind::TermEnergy:
        case InspectKind::GradNorm:
            break;
        }
    }
}

std::string
QuantInspector::renderJsonl() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const InspectRecord& r : records_)
        out += renderRecord(r);
    return out;
}

bool
QuantInspector::writeJsonl(const std::string& path,
                           const std::string& manifest_json, bool append)
{
    const std::string body = renderJsonl();
    AtomicFile af(path, append);
    std::FILE* f = af.stream();
    if (f == nullptr)
        return false;
    bool ok = true;
    if (!manifest_json.empty()) {
        ok = std::fwrite(manifest_json.data(), 1, manifest_json.size(),
                         f) == manifest_json.size() &&
             std::fputc('\n', f) != EOF;
    }
    if (ok && !body.empty())
        ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return af.commit() && ok;
}

void
QuantInspector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
    drained_ = 0;
}

std::size_t
QuantInspector::recordCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

InspectLayerScope::InspectLayerScope(int layer_id)
    : prev_(g_current_layer)
{
    g_current_layer = layer_id;
}

InspectLayerScope::~InspectLayerScope()
{
    g_current_layer = prev_;
}

int
currentInspectLayer()
{
    return g_current_layer;
}

InspectEvalScope::InspectEvalScope()
{
    QuantInspector& inspector = QuantInspector::instance();
    if (!inspector.enabled())
        return;
    active_ = true;
    prevSampling_ = detail::g_inspect_sampling.load(
        std::memory_order_relaxed);
    prevPhase_ = inspector.phase_;
    prevStep_ = inspector.step_;
    inspector.phase_ = "eval";
    inspector.step_ = -1;
    detail::g_inspect_sampling.store(true, std::memory_order_relaxed);
}

InspectEvalScope::~InspectEvalScope()
{
    if (!active_)
        return;
    QuantInspector& inspector = QuantInspector::instance();
    inspector.phase_ = prevPhase_;
    inspector.step_ = prevStep_;
    detail::g_inspect_sampling.store(prevSampling_,
                                     std::memory_order_relaxed);
}

} // namespace obs
} // namespace mrq
