#include "tensor/ops.hpp"

namespace mrq {

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    require(b.dim(0) == k, "matmul: inner dimensions differ: ",
            a.shapeString(), " x ", b.shapeString());

    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // ikj loop order keeps the inner loop contiguous over both B and C.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float aik = pa[i * k + kk];
            if (aik == 0.0f)
                continue;
            const float* brow = pb + kk * n;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransA(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2,
            "matmulTransA: rank-2 tensors required");
    const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    require(b.dim(0) == k, "matmulTransA: inner dimensions differ");

    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* arow = pa + kk * m;
        const float* brow = pb + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float aki = arow[i];
            if (aki == 0.0f)
                continue;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransB(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2,
            "matmulTransB: rank-2 tensors required");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    require(b.dim(1) == k, "matmulTransB: inner dimensions differ");

    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
    return c;
}

Tensor
transpose2d(const Tensor& a)
{
    require(a.rank() == 2, "transpose2d: rank-2 tensor required");
    const std::size_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            t(j, i) = a(i, j);
    return t;
}

Tensor
im2col(const Tensor& input, std::size_t kernel, std::size_t stride,
       std::size_t pad)
{
    require(input.rank() == 4, "im2col: NCHW input required");
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    const std::size_t oh = convOutSize(h, kernel, stride, pad);
    const std::size_t ow = convOutSize(w, kernel, stride, pad);

    Tensor cols({n, c * kernel * kernel, oh * ow});
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            for (std::size_t ky = 0; ky < kernel; ++ky) {
                for (std::size_t kx = 0; kx < kernel; ++kx) {
                    const std::size_t row = (ch * kernel + ky) * kernel + kx;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const long iy = static_cast<long>(oy * stride + ky) -
                                        static_cast<long>(pad);
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const long ix =
                                static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                            float v = 0.0f;
                            if (iy >= 0 && iy < static_cast<long>(h) &&
                                ix >= 0 && ix < static_cast<long>(w)) {
                                v = input(img, ch,
                                          static_cast<std::size_t>(iy),
                                          static_cast<std::size_t>(ix));
                            }
                            cols(img, row, oy * ow + ox) = v;
                        }
                    }
                }
            }
        }
    }
    return cols;
}

Tensor
col2im(const Tensor& cols, std::size_t c, std::size_t h, std::size_t w,
       std::size_t kernel, std::size_t stride, std::size_t pad)
{
    require(cols.rank() == 3, "col2im: rank-3 columns required");
    const std::size_t n = cols.dim(0);
    const std::size_t oh = convOutSize(h, kernel, stride, pad);
    const std::size_t ow = convOutSize(w, kernel, stride, pad);
    require(cols.dim(1) == c * kernel * kernel &&
            cols.dim(2) == oh * ow, "col2im: column shape mismatch");

    Tensor img({n, c, h, w});
    for (std::size_t im = 0; im < n; ++im) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            for (std::size_t ky = 0; ky < kernel; ++ky) {
                for (std::size_t kx = 0; kx < kernel; ++kx) {
                    const std::size_t row = (ch * kernel + ky) * kernel + kx;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const long iy = static_cast<long>(oy * stride + ky) -
                                        static_cast<long>(pad);
                        if (iy < 0 || iy >= static_cast<long>(h))
                            continue;
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const long ix =
                                static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                            if (ix < 0 || ix >= static_cast<long>(w))
                                continue;
                            img(im, ch, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix)) +=
                                cols(im, row, oy * ow + ox);
                        }
                    }
                }
            }
        }
    }
    return img;
}

} // namespace mrq
