#include "tensor/ops.hpp"

#include "kernels/kernels.hpp"
#include "kernels/roofline.hpp"
#include "runtime/thread_pool.hpp"

namespace mrq {

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    require(b.dim(0) == k, "matmul: inner dimensions differ: ",
            a.shapeString(), " x ", b.shapeString());

    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // Rows of C are independent; within each row the ikj order keeps
    // the inner loop contiguous over both B and C, and accumulation
    // per element stays in ascending-k order on every thread count.
    const kernels::KernelTable& kt = kernels::kernels();
    kernels::KernelRegion kr(kernels::KernelId::GemmAxpy,
                             static_cast<std::int64_t>(m * k * n));
    parallelFor(m, parallelGrain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float aik = pa[i * k + kk];
                if (aik == 0.0f)
                    continue;
                kt.axpy(aik, pb + kk * n, pc + i * n, n);
            }
        }
    });
    return c;
}

Tensor
matmulTransA(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2,
            "matmulTransA: rank-2 tensors required");
    const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    require(b.dim(0) == k, "matmulTransA: inner dimensions differ");

    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // i-outer so output rows are independent; each element still
    // accumulates in ascending-k order, matching the k-outer serial
    // loop bit for bit.
    const kernels::KernelTable& kt = kernels::kernels();
    kernels::KernelRegion kr(kernels::KernelId::GemmAxpy,
                             static_cast<std::int64_t>(m * k * n));
    parallelFor(m, parallelGrain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            float* crow = pc + i * n;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float aki = pa[kk * m + i];
                if (aki == 0.0f)
                    continue;
                kt.axpy(aki, pb + kk * n, crow, n);
            }
        }
    });
    return c;
}

Tensor
matmulTransB(const Tensor& a, const Tensor& b)
{
    require(a.rank() == 2 && b.rank() == 2,
            "matmulTransB: rank-2 tensors required");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    require(b.dim(1) == k, "matmulTransB: inner dimensions differ");

    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // Each output element is one dot() call, so the value follows the
    // kernel substrate's fixed 16-lane reduction tree at any thread
    // count and any MRQ_ISA.
    const kernels::KernelTable& kt = kernels::kernels();
    kernels::KernelRegion kr(kernels::KernelId::GemmDot,
                             static_cast<std::int64_t>(m * k * n));
    parallelFor(m, parallelGrain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            const float* arow = pa + i * k;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = kt.dot(arow, pb + j * k, k);
        }
    });
    return c;
}

Tensor
transpose2d(const Tensor& a)
{
    require(a.rank() == 2, "transpose2d: rank-2 tensor required");
    const std::size_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    parallelFor(m, parallelGrain(n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
            for (std::size_t j = 0; j < n; ++j)
                t(j, i) = a(i, j);
    });
    return t;
}

Tensor
im2col(const Tensor& input, std::size_t kernel, std::size_t stride,
       std::size_t pad)
{
    require(input.rank() == 4, "im2col: NCHW input required");
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    const std::size_t oh = convOutSize(h, kernel, stride, pad);
    const std::size_t ow = convOutSize(w, kernel, stride, pad);

    Tensor cols({n, c * kernel * kernel, oh * ow});
    // Each (image, channel) pair fills a disjoint band of rows.
    const std::size_t per_pair = kernel * kernel * oh * ow;
    parallelFor(n * c, parallelGrain(per_pair),
                [&](std::size_t p0, std::size_t p1) {
        for (std::size_t p = p0; p < p1; ++p) {
            const std::size_t img = p / c;
            const std::size_t ch = p % c;
            for (std::size_t ky = 0; ky < kernel; ++ky) {
                for (std::size_t kx = 0; kx < kernel; ++kx) {
                    const std::size_t row = (ch * kernel + ky) * kernel + kx;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const long iy = static_cast<long>(oy * stride + ky) -
                                        static_cast<long>(pad);
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const long ix =
                                static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                            float v = 0.0f;
                            if (iy >= 0 && iy < static_cast<long>(h) &&
                                ix >= 0 && ix < static_cast<long>(w)) {
                                v = input(img, ch,
                                          static_cast<std::size_t>(iy),
                                          static_cast<std::size_t>(ix));
                            }
                            cols(img, row, oy * ow + ox) = v;
                        }
                    }
                }
            }
        }
    });
    return cols;
}

Tensor
col2im(const Tensor& cols, std::size_t c, std::size_t h, std::size_t w,
       std::size_t kernel, std::size_t stride, std::size_t pad)
{
    require(cols.rank() == 3, "col2im: rank-3 columns required");
    const std::size_t n = cols.dim(0);
    const std::size_t oh = convOutSize(h, kernel, stride, pad);
    const std::size_t ow = convOutSize(w, kernel, stride, pad);
    require(cols.dim(1) == c * kernel * kernel &&
            cols.dim(2) == oh * ow, "col2im: column shape mismatch");

    Tensor img({n, c, h, w});
    // Scatter-adds from one (image, channel) pair land only in that
    // pair's plane, so pairs are independent.
    const std::size_t per_pair = kernel * kernel * oh * ow;
    parallelFor(n * c, parallelGrain(per_pair),
                [&](std::size_t p0, std::size_t p1) {
        for (std::size_t p = p0; p < p1; ++p) {
            const std::size_t im = p / c;
            const std::size_t ch = p % c;
            for (std::size_t ky = 0; ky < kernel; ++ky) {
                for (std::size_t kx = 0; kx < kernel; ++kx) {
                    const std::size_t row = (ch * kernel + ky) * kernel + kx;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const long iy = static_cast<long>(oy * stride + ky) -
                                        static_cast<long>(pad);
                        if (iy < 0 || iy >= static_cast<long>(h))
                            continue;
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const long ix =
                                static_cast<long>(ox * stride + kx) -
                                static_cast<long>(pad);
                            if (ix < 0 || ix >= static_cast<long>(w))
                                continue;
                            img(im, ch, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix)) +=
                                cols(im, row, oy * ow + ox);
                        }
                    }
                }
            }
        }
    });
    return img;
}

} // namespace mrq
