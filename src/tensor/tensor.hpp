/**
 * @file
 * A small dense float tensor used throughout the library.
 *
 * Tensors are row-major, contiguous, value-semantic (copies copy the
 * buffer).  They are deliberately minimal: the NN layers in src/nn own
 * all the interesting math; this class only manages shape and storage
 * plus a handful of elementwise helpers.
 */

#ifndef MRQ_TENSOR_TENSOR_HPP
#define MRQ_TENSOR_TENSOR_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace mrq {

/** Dense row-major float tensor with up to rank-4 convenience indexing. */
class Tensor
{
  public:
    /** Empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    /** Tensor of the given shape filled with @p fill. */
    Tensor(std::vector<std::size_t> shape, float fill);

    /** Tensor wrapping a copy of the provided flat data. */
    Tensor(std::vector<std::size_t> shape, std::vector<float> data);

    /** @return The shape vector. */
    const std::vector<std::size_t>& shape() const { return shape_; }

    /** @return The number of axes. */
    std::size_t rank() const { return shape_.size(); }

    /** @return The size of axis @p axis. */
    std::size_t
    dim(std::size_t axis) const
    {
        require(axis < shape_.size(), "Tensor::dim axis ", axis,
                " out of range for rank ", shape_.size());
        return shape_[axis];
    }

    /** @return Total number of elements. */
    std::size_t size() const { return data_.size(); }

    /** @return True when the tensor holds no elements. */
    bool empty() const { return data_.empty(); }

    /** Flat element access. */
    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** Checked flat element access. */
    float&
    at(std::size_t i)
    {
        require(i < data_.size(), "Tensor::at index ", i, " out of range ",
                data_.size());
        return data_[i];
    }

    /** Rank-2 access (row, col). */
    float&
    operator()(std::size_t i, std::size_t j)
    {
        return data_[i * shape_[1] + j];
    }
    float
    operator()(std::size_t i, std::size_t j) const
    {
        return data_[i * shape_[1] + j];
    }

    /** Rank-3 access. */
    float&
    operator()(std::size_t i, std::size_t j, std::size_t k)
    {
        return data_[(i * shape_[1] + j) * shape_[2] + k];
    }
    float
    operator()(std::size_t i, std::size_t j, std::size_t k) const
    {
        return data_[(i * shape_[1] + j) * shape_[2] + k];
    }

    /** Rank-4 access (e.g. NCHW). */
    float&
    operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l)
    {
        return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
    }
    float
    operator()(std::size_t i, std::size_t j, std::size_t k,
               std::size_t l) const
    {
        return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
    }

    /** Raw storage access. */
    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** Underlying flat vector (mainly for tests). */
    const std::vector<float>& flat() const { return data_; }

    /** Set every element to @p value. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /**
     * Reinterpret the buffer with a new shape of identical element count.
     * @return A tensor sharing no storage (copy) with the new shape.
     */
    Tensor reshaped(std::vector<std::size_t> new_shape) const;

    /** In-place reshape; element count must match. */
    void reshape(std::vector<std::size_t> new_shape);

    /** Elementwise in-place operations. */
    Tensor& operator+=(const Tensor& rhs);
    Tensor& operator-=(const Tensor& rhs);
    Tensor& operator*=(float s);

    /** Elementwise binary operators (shape-checked). */
    Tensor operator+(const Tensor& rhs) const;
    Tensor operator-(const Tensor& rhs) const;
    Tensor operator*(float s) const;

    /** Sum of all elements. */
    double sum() const;

    /** Maximum absolute element (0 for empty tensors). */
    float maxAbs() const;

    /** Human-readable shape string, e.g. "[2, 3, 4]". */
    std::string shapeString() const;

    /** @return True when both shapes match exactly. */
    bool sameShape(const Tensor& other) const { return shape_ == other.shape_; }

  private:
    static std::size_t numel(const std::vector<std::size_t>& shape);

    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

} // namespace mrq

#endif // MRQ_TENSOR_TENSOR_HPP
