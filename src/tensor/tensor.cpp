#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace mrq {

std::size_t
Tensor::numel(const std::vector<std::size_t>& shape)
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(numel(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(numel(shape_), fill)
{
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    require(data_.size() == numel(shape_),
            "Tensor: data size ", data_.size(), " does not match shape ",
            shapeString());
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Tensor
Tensor::reshaped(std::vector<std::size_t> new_shape) const
{
    require(numel(new_shape) == data_.size(),
            "Tensor::reshaped: element count mismatch");
    return Tensor(std::move(new_shape), data_);
}

void
Tensor::reshape(std::vector<std::size_t> new_shape)
{
    require(numel(new_shape) == data_.size(),
            "Tensor::reshape: element count mismatch");
    shape_ = std::move(new_shape);
}

Tensor&
Tensor::operator+=(const Tensor& rhs)
{
    require(sameShape(rhs), "Tensor::operator+= shape mismatch: ",
            shapeString(), " vs ", rhs.shapeString());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += rhs.data_[i];
    return *this;
}

Tensor&
Tensor::operator-=(const Tensor& rhs)
{
    require(sameShape(rhs), "Tensor::operator-= shape mismatch: ",
            shapeString(), " vs ", rhs.shapeString());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= rhs.data_[i];
    return *this;
}

Tensor&
Tensor::operator*=(float s)
{
    for (float& v : data_)
        v *= s;
    return *this;
}

Tensor
Tensor::operator+(const Tensor& rhs) const
{
    Tensor out = *this;
    out += rhs;
    return out;
}

Tensor
Tensor::operator-(const Tensor& rhs) const
{
    Tensor out = *this;
    out -= rhs;
    return out;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out = *this;
    out *= s;
    return out;
}

double
Tensor::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            os << ", ";
        os << shape_[i];
    }
    os << "]";
    return os.str();
}

} // namespace mrq
