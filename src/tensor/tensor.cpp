#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "kernels/kernels.hpp"
#include "kernels/roofline.hpp"
#include "runtime/thread_pool.hpp"

namespace mrq {

namespace {

/** Elementwise loops below this size are not worth dispatching. */
constexpr std::size_t kParallelThreshold = 1u << 14;

/** Fixed elementwise grain (thread-count independent). */
constexpr std::size_t kElementGrain = 1u << 14;

} // namespace

std::size_t
Tensor::numel(const std::vector<std::size_t>& shape)
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(numel(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(numel(shape_), fill)
{
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    require(data_.size() == numel(shape_),
            "Tensor: data size ", data_.size(), " does not match shape ",
            shapeString());
}

void
Tensor::fill(float value)
{
    if (data_.size() < kParallelThreshold) {
        std::fill(data_.begin(), data_.end(), value);
        return;
    }
    float* p = data_.data();
    parallelFor(data_.size(), kElementGrain,
                [&](std::size_t b, std::size_t e) {
        std::fill(p + b, p + e, value);
    });
}

Tensor
Tensor::reshaped(std::vector<std::size_t> new_shape) const
{
    require(numel(new_shape) == data_.size(),
            "Tensor::reshaped: element count mismatch");
    return Tensor(std::move(new_shape), data_);
}

void
Tensor::reshape(std::vector<std::size_t> new_shape)
{
    require(numel(new_shape) == data_.size(),
            "Tensor::reshape: element count mismatch");
    shape_ = std::move(new_shape);
}

Tensor&
Tensor::operator+=(const Tensor& rhs)
{
    require(sameShape(rhs), "Tensor::operator+= shape mismatch: ",
            shapeString(), " vs ", rhs.shapeString());
    const kernels::KernelTable& kt = kernels::kernels();
    kernels::KernelRegion kr(kernels::KernelId::AddRow,
                             static_cast<std::int64_t>(data_.size()));
    if (data_.size() < kParallelThreshold) {
        kt.addRowInPlace(data_.data(), rhs.data_.data(), data_.size());
        return *this;
    }
    parallelFor(data_.size(), kElementGrain,
                [&](std::size_t b, std::size_t e) {
        kt.addRowInPlace(data_.data() + b, rhs.data_.data() + b, e - b);
    });
    return *this;
}

Tensor&
Tensor::operator-=(const Tensor& rhs)
{
    require(sameShape(rhs), "Tensor::operator-= shape mismatch: ",
            shapeString(), " vs ", rhs.shapeString());
    if (data_.size() < kParallelThreshold) {
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] -= rhs.data_[i];
        return *this;
    }
    parallelFor(data_.size(), kElementGrain,
                [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            data_[i] -= rhs.data_[i];
    });
    return *this;
}

Tensor&
Tensor::operator*=(float s)
{
    if (data_.size() < kParallelThreshold) {
        for (float& v : data_)
            v *= s;
        return *this;
    }
    parallelFor(data_.size(), kElementGrain,
                [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            data_[i] *= s;
    });
    return *this;
}

Tensor
Tensor::operator+(const Tensor& rhs) const
{
    Tensor out = *this;
    out += rhs;
    return out;
}

Tensor
Tensor::operator-(const Tensor& rhs) const
{
    Tensor out = *this;
    out -= rhs;
    return out;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out = *this;
    out *= s;
    return out;
}

double
Tensor::sum() const
{
    if (data_.size() < kParallelThreshold)
        return std::accumulate(data_.begin(), data_.end(), 0.0);
    // Chunked double accumulation combined in chunk order: the chunk
    // boundaries are fixed, so the value is thread-count independent.
    return parallelReduce(
        data_.size(), kElementGrain, 0.0,
        [&](std::size_t b, std::size_t e) {
            return std::accumulate(data_.begin() + b, data_.begin() + e,
                                   0.0);
        },
        [](double acc, double part) { return acc + part; });
}

float
Tensor::maxAbs() const
{
    if (data_.size() < kParallelThreshold) {
        float m = 0.0f;
        for (float v : data_)
            m = std::max(m, std::fabs(v));
        return m;
    }
    return parallelReduce(
        data_.size(), kElementGrain, 0.0f,
        [&](std::size_t b, std::size_t e) {
            float m = 0.0f;
            for (std::size_t i = b; i < e; ++i)
                m = std::max(m, std::fabs(data_[i]));
            return m;
        },
        [](float acc, float part) { return std::max(acc, part); });
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            os << ", ";
        os << shape_[i];
    }
    os << "]";
    return os.str();
}

} // namespace mrq
