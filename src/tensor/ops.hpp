/**
 * @file
 * Dense linear-algebra kernels used by the NN layers.
 *
 * All kernels run on the shared runtime thread pool (see
 * src/runtime/thread_pool.hpp): work is chunked over independent
 * output rows or (image, channel) planes with thread-count-independent
 * chunk boundaries, so results are bit-identical at any MRQ_THREADS
 * setting.  im2col / col2im implement the standard convolution
 * lowering used by the Conv2d layer.
 */

#ifndef MRQ_TENSOR_OPS_HPP
#define MRQ_TENSOR_OPS_HPP

#include "tensor/tensor.hpp"

namespace mrq {

/**
 * Matrix product C = A * B.
 *
 * @param a Shape [m, k].
 * @param b Shape [k, n].
 * @return Shape [m, n].
 */
Tensor matmul(const Tensor& a, const Tensor& b);

/** Matrix product C = A^T * B where A is [k, m] and B is [k, n]. */
Tensor matmulTransA(const Tensor& a, const Tensor& b);

/** Matrix product C = A * B^T where A is [m, k] and B is [n, k]. */
Tensor matmulTransB(const Tensor& a, const Tensor& b);

/** 2-D transpose of an [m, n] matrix. */
Tensor transpose2d(const Tensor& a);

/**
 * Lower an NCHW input into convolution columns.
 *
 * @param input  Shape [n, c, h, w].
 * @param kernel Kernel size (square).
 * @param stride Stride (same both axes).
 * @param pad    Zero padding (same all sides).
 * @return Shape [n, c*kernel*kernel, out_h*out_w].
 */
Tensor im2col(const Tensor& input, std::size_t kernel, std::size_t stride,
              std::size_t pad);

/**
 * Inverse of im2col: scatter-add columns back into an NCHW gradient.
 *
 * @param cols Shape [n, c*kernel*kernel, out_h*out_w].
 * @param c,h,w Original spatial geometry.
 */
Tensor col2im(const Tensor& cols, std::size_t c, std::size_t h,
              std::size_t w, std::size_t kernel, std::size_t stride,
              std::size_t pad);

/** Output spatial size for a conv/pool sweep. */
inline std::size_t
convOutSize(std::size_t in, std::size_t kernel, std::size_t stride,
            std::size_t pad)
{
    require(in + 2 * pad >= kernel, "convOutSize: kernel larger than input");
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace mrq

#endif // MRQ_TENSOR_OPS_HPP
