/**
 * @file
 * End-to-end training/evaluation pipelines for the three task
 * families the paper evaluates (image classification, language
 * modeling, object detection).
 *
 * Each pipeline mirrors the paper's recipe: full-precision
 * pretraining (the paper initializes from pretrained torchvision /
 * PyTorch-example models), weight-clip calibration, then either
 * Algorithm-1 multi-resolution fine-tuning, individually-trained
 * fine-tuning at one configuration, or no fine-tuning at all
 * (post-training quantization, the Sec. 6.3 baseline).
 */

#ifndef MRQ_TRAIN_PIPELINES_HPP
#define MRQ_TRAIN_PIPELINES_HPP

#include <vector>

#include "core/multires_trainer.hpp"
#include "data/synth_detect.hpp"
#include "data/synth_images.hpp"
#include "data/synth_text.hpp"
#include "models/lstm_lm.hpp"
#include "models/tiny_yolo.hpp"
#include "nn/sequential.hpp"

namespace mrq {

/** Pipeline hyperparameters (shared across tasks). */
struct PipelineOptions
{
    std::size_t fpEpochs = 8;  ///< Full-precision pretraining epochs.
    std::size_t mrEpochs = 8;  ///< Multi-resolution (or single) epochs.
    std::size_t batchSize = 32;
    float fpLr = 0.08f;
    float mrLr = 0.02f;
    float momentum = 0.9f;
    float weightDecay = 1e-4f;
    /**
     * Soft-loss mix and temperature.  The paper fixes neither; gentle
     * settings keep the KD term from over-softening the targets of
     * very aggressive students (see bench_ablation_distill).
     */
    float distillWeight = 0.3f;
    float distillTemperature = 2.0f;
    bool useDistillation = true;
    std::size_t bptt = 16;     ///< LM truncated-BPTT window.
    std::uint64_t seed = 7;
    bool verbose = false;
};

/** Per-sub-model outcome of a pipeline run. */
struct SubModelResult
{
    SubModelConfig config;
    double metric = 0.0;        ///< Accuracy / perplexity / mAP.
    std::size_t termPairs = 0;  ///< Term-pair multiplications per sample.
};

/** Outcome of a pipeline run across the ladder. */
struct PipelineResult
{
    std::vector<SubModelResult> subModels;
    double fp32Metric = 0.0;           ///< Metric of the FP model.
    double fpEpochSeconds = 0.0;       ///< Mean FP epoch wall time.
    double mrEpochSeconds = 0.0;       ///< Mean multi-res epoch wall time.
};

// ---------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------

/**
 * Evaluate test accuracy at one configuration.  Batch-norm running
 * statistics are first re-estimated for @p cfg from
 * @p calibration_batches training batches (switchable-precision
 * networks need per-configuration statistics).
 */
double evalClassifier(MultiResTrainer& trainer, const SynthImages& data,
                      const SubModelConfig& cfg,
                      std::size_t eval_batch = 100,
                      std::size_t calibration_batches = 15);

/** FP pretrain + Algorithm-1 multi-resolution fine-tune + evaluate. */
PipelineResult runClassifierMultiRes(Sequential& model,
                                     const SynthImages& data,
                                     const SubModelLadder& ladder,
                                     const PipelineOptions& opts);

/** FP pretrain + fine-tune at a single configuration + evaluate. */
PipelineResult runClassifierSingle(Sequential& model,
                                   const SynthImages& data,
                                   const SubModelConfig& cfg,
                                   const PipelineOptions& opts);

/** FP pretrain only; evaluate every ladder entry post-training. */
PipelineResult runClassifierPostTraining(Sequential& model,
                                         const SynthImages& data,
                                         const SubModelLadder& ladder,
                                         const PipelineOptions& opts);

// ---------------------------------------------------------------------
// Language modeling.
// ---------------------------------------------------------------------

/** Validation perplexity at one configuration. */
double evalLm(MultiResTrainer& trainer, LstmLm& model,
              const SynthText& data, const SubModelConfig& cfg,
              std::size_t bptt);

/** FP pretrain + multi-resolution fine-tune + evaluate perplexities. */
PipelineResult runLmMultiRes(LstmLm& model, const SynthText& data,
                             const SubModelLadder& ladder,
                             const PipelineOptions& opts);

/** FP pretrain + fine-tune at a single configuration + evaluate. */
PipelineResult runLmSingle(LstmLm& model, const SynthText& data,
                           const SubModelConfig& cfg,
                           const PipelineOptions& opts);

// ---------------------------------------------------------------------
// Detection.
// ---------------------------------------------------------------------

/** Test-set mAP@0.5 at one configuration. */
double evalYolo(MultiResTrainer& trainer, const SynthDetect& data,
                const SubModelConfig& cfg, std::size_t eval_batch = 50);

/** FP pretrain + multi-resolution fine-tune + evaluate mAP. */
PipelineResult runYoloMultiRes(TinyYolo& model, const SynthDetect& data,
                               const SubModelLadder& ladder,
                               const PipelineOptions& opts);

/** FP pretrain + fine-tune at a single configuration + evaluate. */
PipelineResult runYoloSingle(TinyYolo& model, const SynthDetect& data,
                             const SubModelConfig& cfg,
                             const PipelineOptions& opts);

} // namespace mrq

#endif // MRQ_TRAIN_PIPELINES_HPP
