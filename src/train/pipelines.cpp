#include "train/pipelines.hpp"

#include <chrono>
#include <cstdio>

#include "core/term_accounting.hpp"
#include "data/batcher.hpp"
#include "nn/loss.hpp"

namespace mrq {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

TrainerOptions
trainerOptions(const PipelineOptions& opts, float lr)
{
    TrainerOptions t;
    t.lr = lr;
    t.momentum = opts.momentum;
    t.weightDecay = opts.weightDecay;
    t.distillWeight = opts.distillWeight;
    t.useDistillation = opts.useDistillation;
    t.seed = opts.seed ^ 0xabcdULL;
    return t;
}

SubModelConfig
fpConfig()
{
    SubModelConfig cfg;
    cfg.mode = QuantMode::None;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------

double
evalClassifier(MultiResTrainer& trainer, const SynthImages& data,
               const SubModelConfig& cfg, std::size_t eval_batch,
               std::size_t calibration_batches)
{
    const Tensor& images = data.testImages();
    const std::vector<int>& labels = data.testLabels();
    const std::size_t n = images.dim(0);
    const std::size_t plane = 3 * data.imageSize() * data.imageSize();

    // Re-estimate batch-norm statistics under this configuration.
    const std::size_t train_n = data.trainImages().dim(0);
    const std::size_t calib_batch = 50;
    for (std::size_t b = 0; b < calibration_batches; ++b) {
        const std::size_t base = (b * calib_batch) % train_n;
        const std::size_t len = std::min(calib_batch, train_n - base);
        if (len < 2)
            continue;
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(data.trainImages().data() + base * plane,
                  data.trainImages().data() + (base + len) * plane,
                  batch.data());
        trainer.calibrate(batch, cfg);
    }

    std::size_t hits = 0;
    for (std::size_t base = 0; base < n; base += eval_batch) {
        const std::size_t len = std::min(eval_batch, n - base);
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(images.data() + base * plane,
                  images.data() + (base + len) * plane, batch.data());
        Tensor logits = trainer.inferAt(batch, cfg);
        for (std::size_t i = 0; i < len; ++i) {
            std::size_t best = 0;
            for (std::size_t j = 1; j < logits.dim(1); ++j)
                if (logits(i, j) > logits(i, best))
                    best = j;
            hits += best == static_cast<std::size_t>(labels[base + i]);
        }
    }
    return static_cast<double>(hits) / static_cast<double>(n);
}

namespace {

/** Shared classification driver covering all three pipeline modes. */
PipelineResult
classifierPipeline(Sequential& model, const SynthImages& data,
                   const SubModelLadder& ladder,
                   const PipelineOptions& opts, bool multires,
                   const SubModelConfig* single_cfg)
{
    PipelineResult result;
    MultiResTrainer trainer(model, ladder, trainerOptions(opts, opts.fpLr));
    Batcher batcher(data.trainImages().dim(0), opts.batchSize, opts.seed);
    const std::size_t batches = batcher.batchesPerEpoch();

    auto make_hard = [&](const std::vector<int>& labels) -> HardLossFn {
        return [&labels](const Tensor& out, Tensor* dout) {
            return softmaxCrossEntropy(out, labels, dout);
        };
    };
    SoftLossFn soft = [&opts](const Tensor& s, const Tensor& t,
                              Tensor* ds) {
        return distillationLoss(s, t, opts.distillTemperature, ds);
    };

    // Phase 1: full-precision pretraining.
    for (std::size_t epoch = 0; epoch < opts.fpEpochs; ++epoch) {
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.fpLr, static_cast<int>(epoch),
                     static_cast<int>(opts.fpEpochs)));
        double loss = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
            const auto idx = batcher.next();
            const Tensor input = data.gatherImages(idx);
            const std::vector<int> labels = data.gatherLabels(idx);
            loss += trainer.trainIterationSingle(input, make_hard(labels),
                                                 fpConfig());
        }
        result.fpEpochSeconds += seconds(t0, Clock::now());
        if (opts.verbose)
            std::printf("  [fp   epoch %zu] loss %.4f\n", epoch,
                        loss / batches);
    }
    if (opts.fpEpochs > 0)
        result.fpEpochSeconds /= static_cast<double>(opts.fpEpochs);
    model.calibrateWeightClips();
    result.fp32Metric = evalClassifier(trainer, data, fpConfig());

    // Phase 2: fine-tuning (multi-resolution, single config, or none).
    const bool post_training = !multires && single_cfg == nullptr;
    if (!post_training) {
        for (std::size_t epoch = 0; epoch < opts.mrEpochs; ++epoch) {
            const auto t0 = Clock::now();
            trainer.optimizer().setLr(
                cosineLr(opts.mrLr, static_cast<int>(epoch),
                         static_cast<int>(opts.mrEpochs)));
            double loss = 0.0;
            for (std::size_t b = 0; b < batches; ++b) {
                const auto idx = batcher.next();
                const Tensor input = data.gatherImages(idx);
                const std::vector<int> labels = data.gatherLabels(idx);
                if (multires) {
                    loss += trainer
                                .trainIteration(input, make_hard(labels),
                                                soft)
                                .studentLoss;
                } else {
                    loss += trainer.trainIterationSingle(
                        input, make_hard(labels), *single_cfg);
                }
            }
            result.mrEpochSeconds += seconds(t0, Clock::now());
            if (opts.verbose)
                std::printf("  [tune epoch %zu] loss %.4f\n", epoch,
                            loss / batches);
        }
        if (opts.mrEpochs > 0)
            result.mrEpochSeconds /= static_cast<double>(opts.mrEpochs);
    }

    // Per-sample MAC count for term-pair accounting.
    Tensor probe({1, 3, data.imageSize(), data.imageSize()});
    std::copy(data.testImages().data(),
              data.testImages().data() + probe.size(), probe.data());
    model.setTraining(false);
    const std::size_t macs = countModelMacs(model, probe);
    model.setTraining(true);
    model.setQuantContext(&trainer.context());

    // Evaluation across the ladder (or the single config).
    if (single_cfg != nullptr) {
        SubModelResult r;
        r.config = *single_cfg;
        r.metric = evalClassifier(trainer, data, *single_cfg);
        r.termPairs = termPairCount(macs, *single_cfg);
        result.subModels.push_back(r);
    } else {
        for (const SubModelConfig& cfg : ladder) {
            SubModelResult r;
            r.config = cfg;
            r.metric = evalClassifier(trainer, data, cfg);
            r.termPairs = termPairCount(macs, cfg);
            result.subModels.push_back(r);
        }
    }
    return result;
}

} // namespace

PipelineResult
runClassifierMultiRes(Sequential& model, const SynthImages& data,
                      const SubModelLadder& ladder,
                      const PipelineOptions& opts)
{
    return classifierPipeline(model, data, ladder, opts, true, nullptr);
}

PipelineResult
runClassifierSingle(Sequential& model, const SynthImages& data,
                    const SubModelConfig& cfg, const PipelineOptions& opts)
{
    // Ladder only feeds the trainer's teacher bookkeeping; a single
    // entry keeps the draw degenerate.
    return classifierPipeline(model, data, {cfg}, opts, false, &cfg);
}

PipelineResult
runClassifierPostTraining(Sequential& model, const SynthImages& data,
                          const SubModelLadder& ladder,
                          const PipelineOptions& opts)
{
    return classifierPipeline(model, data, ladder, opts, false, nullptr);
}

// ---------------------------------------------------------------------
// Language modeling.
// ---------------------------------------------------------------------

double
evalLm(MultiResTrainer& trainer, LstmLm& model, const SynthText& data,
       const SubModelConfig& cfg, std::size_t bptt)
{
    trainer.context().config = cfg;
    return lmPerplexity(model, data.valid(), bptt);
}

namespace {

PipelineResult
lmPipeline(LstmLm& model, const SynthText& data,
           const SubModelLadder& ladder, const PipelineOptions& opts,
           const SubModelConfig* single_cfg)
{
    PipelineResult result;
    MultiResTrainer trainer(model, ladder, trainerOptions(opts, opts.fpLr));
    trainer.optimizer().setGradClip(1.0f);

    const std::vector<int>& stream = data.train();
    const std::size_t batch = opts.batchSize;
    const std::size_t col_len = (stream.size() - 1) / batch;
    const std::size_t windows =
        col_len > opts.bptt ? (col_len - 1) / opts.bptt : 0;
    require(windows > 0, "runLmMultiRes: training stream too short");

    std::vector<int> targets(opts.bptt * batch);
    auto make_batch = [&](std::size_t w, Tensor* input) {
        const std::size_t start = w * opts.bptt;
        const std::size_t t_len =
            std::min(opts.bptt, col_len - 1 - start);
        *input = Tensor({t_len, batch});
        targets.resize(t_len * batch);
        for (std::size_t t = 0; t < t_len; ++t)
            for (std::size_t b = 0; b < batch; ++b) {
                const std::size_t pos = b * col_len + start + t;
                (*input)(t, b) = static_cast<float>(stream[pos]);
                targets[t * batch + b] = stream[pos + 1];
            }
    };
    HardLossFn hard = [&targets](const Tensor& out, Tensor* dout) {
        return softmaxCrossEntropy(out, targets, dout);
    };
    SoftLossFn soft = [&opts](const Tensor& s, const Tensor& t,
                              Tensor* ds) {
        return distillationLoss(s, t, opts.distillTemperature, ds);
    };

    // Phase 1: full-precision pretraining.
    for (std::size_t epoch = 0; epoch < opts.fpEpochs; ++epoch) {
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.fpLr, static_cast<int>(epoch),
                     static_cast<int>(opts.fpEpochs)));
        for (std::size_t w = 0; w < windows; ++w) {
            Tensor input;
            make_batch(w, &input);
            trainer.trainIterationSingle(input, hard, fpConfig());
        }
        result.fpEpochSeconds += seconds(t0, Clock::now());
        if (opts.verbose)
            std::printf("  [fp   epoch %zu] ppl %.2f\n", epoch,
                        lmPerplexity(model, data.valid(), opts.bptt));
    }
    if (opts.fpEpochs > 0)
        result.fpEpochSeconds /= static_cast<double>(opts.fpEpochs);
    model.calibrateWeightClips();
    result.fp32Metric = evalLm(trainer, model, data, fpConfig(), opts.bptt);

    // Phase 2: fine-tuning (multi-resolution or single-config).
    for (std::size_t epoch = 0; epoch < opts.mrEpochs; ++epoch) {
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.mrLr, static_cast<int>(epoch),
                     static_cast<int>(opts.mrEpochs)));
        for (std::size_t w = 0; w < windows; ++w) {
            Tensor input;
            make_batch(w, &input);
            if (single_cfg)
                trainer.trainIterationSingle(input, hard, *single_cfg);
            else
                trainer.trainIteration(input, hard, soft);
        }
        result.mrEpochSeconds += seconds(t0, Clock::now());
    }
    if (opts.mrEpochs > 0)
        result.mrEpochSeconds /= static_cast<double>(opts.mrEpochs);

    // MACs per token.
    Tensor probe({opts.bptt, 1});
    for (std::size_t t = 0; t < opts.bptt; ++t)
        probe(t, 0) = static_cast<float>(data.valid()[t]);
    model.setTraining(false);
    QuantContext macs_ctx;
    macs_ctx.collectStats = true;
    macs_ctx.config.mode = QuantMode::None;
    model.setQuantContext(&macs_ctx);
    model.forward(probe);
    const std::size_t macs_per_token = macs_ctx.macs / opts.bptt;
    model.setTraining(true);
    model.setQuantContext(&trainer.context());

    const SubModelLadder eval_set =
        single_cfg ? SubModelLadder{*single_cfg} : ladder;
    for (const SubModelConfig& cfg : eval_set) {
        SubModelResult r;
        r.config = cfg;
        r.metric = evalLm(trainer, model, data, cfg, opts.bptt);
        r.termPairs = termPairCount(macs_per_token, cfg);
        result.subModels.push_back(r);
    }
    return result;
}

} // namespace

PipelineResult
runLmMultiRes(LstmLm& model, const SynthText& data,
              const SubModelLadder& ladder, const PipelineOptions& opts)
{
    return lmPipeline(model, data, ladder, opts, nullptr);
}

PipelineResult
runLmSingle(LstmLm& model, const SynthText& data,
            const SubModelConfig& cfg, const PipelineOptions& opts)
{
    return lmPipeline(model, data, {cfg}, opts, &cfg);
}

// ---------------------------------------------------------------------
// Detection.
// ---------------------------------------------------------------------

double
evalYolo(MultiResTrainer& trainer, const SynthDetect& data,
         const SubModelConfig& cfg, std::size_t eval_batch)
{
    const Tensor& images = data.testImages();
    const std::size_t n = images.dim(0);
    const std::size_t plane = 3 * data.imageSize() * data.imageSize();

    // Per-configuration batch-norm recalibration (as in the
    // classification pipeline).
    const std::size_t train_n = data.trainImages().dim(0);
    const std::size_t calib_batch = 32;
    for (std::size_t b = 0; b < 10; ++b) {
        const std::size_t base = (b * calib_batch) % train_n;
        const std::size_t len = std::min(calib_batch, train_n - base);
        if (len < 2)
            continue;
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(data.trainImages().data() + base * plane,
                  data.trainImages().data() + (base + len) * plane,
                  batch.data());
        trainer.calibrate(batch, cfg);
    }

    std::vector<std::vector<DetBox>> predictions;
    predictions.reserve(n);
    for (std::size_t base = 0; base < n; base += eval_batch) {
        const std::size_t len = std::min(eval_batch, n - base);
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(images.data() + base * plane,
                  images.data() + (base + len) * plane, batch.data());
        Tensor preds = trainer.inferAt(batch, cfg);
        auto decoded = decodeYolo(preds);
        for (auto& boxes : decoded)
            predictions.push_back(std::move(boxes));
    }
    return meanAveragePrecision(predictions, data.testBoxes(),
                                SynthDetect::kNumClasses);
}

namespace {

PipelineResult
yoloPipeline(TinyYolo& model, const SynthDetect& data,
             const SubModelLadder& ladder, const PipelineOptions& opts,
             const SubModelConfig* single_cfg)
{
    PipelineResult result;
    MultiResTrainer trainer(model, ladder, trainerOptions(opts, opts.fpLr));
    Batcher batcher(data.trainImages().dim(0), opts.batchSize, opts.seed);
    const std::size_t batches = batcher.batchesPerEpoch();
    const std::size_t plane = 3 * data.imageSize() * data.imageSize();

    std::vector<std::vector<DetBox>> batch_truth;
    auto make_batch = [&](Tensor* input) {
        const auto idx = batcher.next();
        *input =
            Tensor({idx.size(), 3, data.imageSize(), data.imageSize()});
        batch_truth.clear();
        for (std::size_t i = 0; i < idx.size(); ++i) {
            std::copy(data.trainImages().data() + idx[i] * plane,
                      data.trainImages().data() + (idx[i] + 1) * plane,
                      input->data() + i * plane);
            batch_truth.push_back(data.trainBoxes()[idx[i]]);
        }
    };
    HardLossFn hard = [&batch_truth](const Tensor& out, Tensor* dout) {
        return yoloLoss(out, batch_truth, dout);
    };
    // Detection distillation: match the teacher's raw prediction maps.
    SoftLossFn soft = [](const Tensor& s, const Tensor& t, Tensor* ds) {
        return mseLoss(s, t, ds);
    };

    for (std::size_t epoch = 0; epoch < opts.fpEpochs; ++epoch) {
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.fpLr, static_cast<int>(epoch),
                     static_cast<int>(opts.fpEpochs)));
        double loss = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
            Tensor input;
            make_batch(&input);
            loss += trainer.trainIterationSingle(input, hard, fpConfig());
        }
        result.fpEpochSeconds += seconds(t0, Clock::now());
        if (opts.verbose)
            std::printf("  [fp   epoch %zu] loss %.4f\n", epoch,
                        loss / batches);
    }
    if (opts.fpEpochs > 0)
        result.fpEpochSeconds /= static_cast<double>(opts.fpEpochs);
    model.calibrateWeightClips();
    result.fp32Metric = evalYolo(trainer, data, fpConfig());

    for (std::size_t epoch = 0; epoch < opts.mrEpochs; ++epoch) {
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.mrLr, static_cast<int>(epoch),
                     static_cast<int>(opts.mrEpochs)));
        for (std::size_t b = 0; b < batches; ++b) {
            Tensor input;
            make_batch(&input);
            if (single_cfg)
                trainer.trainIterationSingle(input, hard, *single_cfg);
            else
                trainer.trainIteration(input, hard, soft);
        }
        result.mrEpochSeconds += seconds(t0, Clock::now());
    }
    if (opts.mrEpochs > 0)
        result.mrEpochSeconds /= static_cast<double>(opts.mrEpochs);

    Tensor probe({1, 3, data.imageSize(), data.imageSize()});
    std::copy(data.testImages().data(),
              data.testImages().data() + probe.size(), probe.data());
    model.setTraining(false);
    const std::size_t macs = countModelMacs(model, probe);
    model.setTraining(true);
    model.setQuantContext(&trainer.context());

    const SubModelLadder eval_set =
        single_cfg ? SubModelLadder{*single_cfg} : ladder;
    for (const SubModelConfig& cfg : eval_set) {
        SubModelResult r;
        r.config = cfg;
        r.metric = evalYolo(trainer, data, cfg);
        r.termPairs = termPairCount(macs, cfg);
        result.subModels.push_back(r);
    }
    return result;
}

} // namespace

PipelineResult
runYoloMultiRes(TinyYolo& model, const SynthDetect& data,
                const SubModelLadder& ladder, const PipelineOptions& opts)
{
    return yoloPipeline(model, data, ladder, opts, nullptr);
}

PipelineResult
runYoloSingle(TinyYolo& model, const SynthDetect& data,
              const SubModelConfig& cfg, const PipelineOptions& opts)
{
    return yoloPipeline(model, data, {cfg}, opts, &cfg);
}

} // namespace mrq
