#include "train/pipelines.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/term_accounting.hpp"
#include "data/batcher.hpp"
#include "nn/loss.hpp"
#include "obs/crash_handler.hpp"
#include "obs/inspect.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace mrq {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

std::string
formatOpt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** Self-describing manifest for one pipeline run (JSONL line 1). */
obs::RunManifest
pipelineManifest(const char* run, const PipelineOptions& opts,
                 const SubModelLadder& ladder)
{
    obs::RunManifest m;
    m.run = run;
    m.seed = opts.seed;
    m.add("fp_epochs", std::to_string(opts.fpEpochs));
    m.add("mr_epochs", std::to_string(opts.mrEpochs));
    m.add("batch_size", std::to_string(opts.batchSize));
    m.add("fp_lr", formatOpt(opts.fpLr));
    m.add("mr_lr", formatOpt(opts.mrLr));
    m.add("momentum", formatOpt(opts.momentum));
    m.add("weight_decay", formatOpt(opts.weightDecay));
    m.add("distill_weight", formatOpt(opts.distillWeight));
    m.add("distill_temperature", formatOpt(opts.distillTemperature));
    m.add("distillation", opts.useDistillation ? "on" : "off");
    m.add("bptt", std::to_string(opts.bptt));
    std::string rungs;
    for (const SubModelConfig& cfg : ladder) {
        if (!rungs.empty())
            rungs += ',';
        rungs += cfg.name();
    }
    m.add("ladder", rungs);
    return m;
}

/** Record one evaluated rung: gauges keyed by rung name + a curve. */
void
recordSubModelEval(std::size_t index, const SubModelResult& r)
{
    if (!obs::metricsEnabled())
        return;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    const std::string base = "train.eval." + r.config.name();
    reg.setGauge(base + ".metric", r.metric);
    reg.setGauge(base + ".term_pairs",
                 static_cast<double>(r.termPairs));
    reg.recordSeries("train.eval.metric",
                     static_cast<std::int64_t>(index), r.metric);
}

/** Record one epoch's mean loss on the named curve. */
void
recordEpoch(const char* series, std::size_t epoch, double mean_loss)
{
    if (!obs::metricsEnabled())
        return;
    obs::MetricsRegistry::instance().recordSeries(
        series, static_cast<std::int64_t>(epoch), mean_loss);
}

TrainerOptions
trainerOptions(const PipelineOptions& opts, float lr)
{
    TrainerOptions t;
    t.lr = lr;
    t.momentum = opts.momentum;
    t.weightDecay = opts.weightDecay;
    t.distillWeight = opts.distillWeight;
    t.useDistillation = opts.useDistillation;
    t.seed = opts.seed ^ 0xabcdULL;
    return t;
}

SubModelConfig
fpConfig()
{
    SubModelConfig cfg;
    cfg.mode = QuantMode::None;
    return cfg;
}

/** Cumulative projection-cache hit/miss totals from the registry. */
void
projCacheCounts(std::int64_t* hits, std::int64_t* misses)
{
    *hits = 0;
    *misses = 0;
    if (!obs::metricsEnabled())
        return;
    const obs::Snapshot snap = obs::MetricsRegistry::instance().snapshot();
    for (const auto& c : snap.counters) {
        if (c.name == "nn.proj_cache.hits")
            *hits = c.value;
        else if (c.name == "nn.proj_cache.misses")
            *misses = c.value;
    }
}

/**
 * Tune-epoch boundary: sample the cumulative projection-cache hit
 * rate onto a timeline counter track.  Tuning invalidates the cache
 * on every optimizer step, so a near-zero rate here is expected and
 * carries no judgment — the watchdog floor rule only inspects the
 * eval phase (evalCacheHealth), where weights are frozen and
 * projections should hit.
 */
void
epochCacheTrack()
{
    if (!obs::traceExportEnabled())
        return;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    projCacheCounts(&hits, &misses);
    if (hits + misses > 0)
        obs::traceCounterSample("cache.hit_rate",
                                static_cast<double>(hits) /
                                    static_cast<double>(hits + misses));
}

/**
 * Eval-phase cache health: judge the hit rate of the lookups made
 * since (hits_before, misses_before) — captured just before the eval
 * loop — so training-time misses cannot trip the floor.  The counters
 * are integers summed over shards, so the delta — and any alert it
 * triggers — is identical at every MRQ_THREADS.
 */
void
evalCacheHealth(MultiResTrainer& trainer, const char* run,
                std::int64_t hits_before, std::int64_t misses_before)
{
    if (!trainer.watchdog().enabled() && !obs::traceExportEnabled())
        return;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    projCacheCounts(&hits, &misses);
    hits -= hits_before;
    misses -= misses_before;
    trainer.watchdog().checkCacheHitRate(run, trainer.batchIndex(), hits,
                                         misses);
    if (obs::traceExportEnabled() && hits + misses > 0)
        obs::traceCounterSample("cache.hit_rate",
                                static_cast<double>(hits) /
                                    static_cast<double>(hits + misses));
}

/**
 * Eval-boundary nesting-monotonicity check over the evaluated rungs
 * (ladder order is ascending budgets).  batch = -1 marks an
 * eval-boundary alert.
 */
void
checkLadderMonotonicity(MultiResTrainer& trainer, const char* run,
                        const std::vector<SubModelResult>& rungs,
                        bool higher_is_better)
{
    if (!trainer.watchdog().enabled() || rungs.size() < 2)
        return;
    std::vector<std::string> names;
    std::vector<double> metrics;
    names.reserve(rungs.size());
    metrics.reserve(rungs.size());
    for (const SubModelResult& r : rungs) {
        names.push_back(r.config.name());
        metrics.push_back(r.metric);
    }
    trainer.watchdog().checkRungMonotonicity(run, -1, names, metrics,
                                             higher_is_better);
}

} // namespace

// ---------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------

double
evalClassifier(MultiResTrainer& trainer, const SynthImages& data,
               const SubModelConfig& cfg, std::size_t eval_batch,
               std::size_t calibration_batches)
{
    const Tensor& images = data.testImages();
    const std::vector<int>& labels = data.testLabels();
    const std::size_t n = images.dim(0);
    const std::size_t plane = 3 * data.imageSize() * data.imageSize();

    // Re-estimate batch-norm statistics under this configuration.
    const std::size_t train_n = data.trainImages().dim(0);
    const std::size_t calib_batch = 50;
    for (std::size_t b = 0; b < calibration_batches; ++b) {
        const std::size_t base = (b * calib_batch) % train_n;
        const std::size_t len = std::min(calib_batch, train_n - base);
        if (len < 2)
            continue;
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(data.trainImages().data() + base * plane,
                  data.trainImages().data() + (base + len) * plane,
                  batch.data());
        trainer.calibrate(batch, cfg);
    }

    std::size_t hits = 0;
    for (std::size_t base = 0; base < n; base += eval_batch) {
        const std::size_t len = std::min(eval_batch, n - base);
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(images.data() + base * plane,
                  images.data() + (base + len) * plane, batch.data());
        Tensor logits = trainer.inferAt(batch, cfg);
        for (std::size_t i = 0; i < len; ++i) {
            std::size_t best = 0;
            for (std::size_t j = 1; j < logits.dim(1); ++j)
                if (logits(i, j) > logits(i, best))
                    best = j;
            hits += best == static_cast<std::size_t>(labels[base + i]);
        }
    }
    return static_cast<double>(hits) / static_cast<double>(n);
}

namespace {

/** Shared classification driver covering all three pipeline modes. */
PipelineResult
classifierPipeline(Sequential& model, const SynthImages& data,
                   const SubModelLadder& ladder,
                   const PipelineOptions& opts, bool multires,
                   const SubModelConfig* single_cfg)
{
    PipelineResult result;
    const char* run = multires ? "classifier.multires"
                      : single_cfg != nullptr ? "classifier.single"
                                              : "classifier.post_training";
    obs::RunScope obs_run(pipelineManifest(run, opts, ladder),
                          opts.verbose);
    MultiResTrainer trainer(model, ladder, trainerOptions(opts, opts.fpLr));
    Batcher batcher(data.trainImages().dim(0), opts.batchSize, opts.seed);
    const std::size_t batches = batcher.batchesPerEpoch();

    auto make_hard = [&](const std::vector<int>& labels) -> HardLossFn {
        return [&labels](const Tensor& out, Tensor* dout) {
            return softmaxCrossEntropy(out, labels, dout);
        };
    };
    SoftLossFn soft = [&opts](const Tensor& s, const Tensor& t,
                              Tensor* ds) {
        return distillationLoss(s, t, opts.distillTemperature, ds);
    };

    // Phase 1: full-precision pretraining.
    for (std::size_t epoch = 0; epoch < opts.fpEpochs; ++epoch) {
        obs::faultInjectionPoint("epoch",
                                 static_cast<std::int64_t>(epoch));
        MRQ_TRACE_SPAN("pipeline.fp_epoch");
        obs::PerfScope perf("pipeline.fp_epoch");
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.fpLr, static_cast<int>(epoch),
                     static_cast<int>(opts.fpEpochs)));
        double loss = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
            const auto idx = batcher.next();
            const Tensor input = data.gatherImages(idx);
            const std::vector<int> labels = data.gatherLabels(idx);
            loss += trainer.trainIterationSingle(input, make_hard(labels),
                                                 fpConfig());
        }
        result.fpEpochSeconds += seconds(t0, Clock::now());
        recordEpoch("train.fp.loss", epoch, loss / batches);
        obs::logf("phase=fp epoch=%zu loss=%.4f", epoch, loss / batches);
    }
    if (opts.fpEpochs > 0)
        result.fpEpochSeconds /= static_cast<double>(opts.fpEpochs);
    model.calibrateWeightClips();
    result.fp32Metric = evalClassifier(trainer, data, fpConfig());
    if (obs::metricsEnabled())
        obs::MetricsRegistry::instance().setGauge("train.eval.fp32.metric",
                                                  result.fp32Metric);
    obs::logf("phase=eval rung=fp32 metric=%.4f", result.fp32Metric);

    // Phase 2: fine-tuning (multi-resolution, single config, or none).
    const bool post_training = !multires && single_cfg == nullptr;
    if (!post_training) {
        for (std::size_t epoch = 0; epoch < opts.mrEpochs; ++epoch) {
            obs::faultInjectionPoint("epoch",
                                     static_cast<std::int64_t>(epoch));
            MRQ_TRACE_SPAN("pipeline.tune_epoch");
            obs::PerfScope perf("pipeline.tune_epoch");
            const auto t0 = Clock::now();
            trainer.optimizer().setLr(
                cosineLr(opts.mrLr, static_cast<int>(epoch),
                         static_cast<int>(opts.mrEpochs)));
            double loss = 0.0;
            double teacher_loss = 0.0;
            std::vector<double> rung_loss(ladder.size(), 0.0);
            std::vector<std::size_t> rung_count(ladder.size(), 0);
            for (std::size_t b = 0; b < batches; ++b) {
                const auto idx = batcher.next();
                const Tensor input = data.gatherImages(idx);
                const std::vector<int> labels = data.gatherLabels(idx);
                if (multires) {
                    const MultiResTrainer::IterStats st =
                        trainer.trainIteration(input, make_hard(labels),
                                               soft);
                    loss += st.studentLoss;
                    teacher_loss += st.teacherLoss;
                    rung_loss[st.studentIndex] += st.studentLoss;
                    rung_count[st.studentIndex] += 1;
                } else {
                    loss += trainer.trainIterationSingle(
                        input, make_hard(labels), *single_cfg);
                }
            }
            result.mrEpochSeconds += seconds(t0, Clock::now());
            recordEpoch("train.tune.loss", epoch, loss / batches);
            if (multires) {
                recordEpoch("train.tune.teacher_loss", epoch,
                            teacher_loss / batches);
                for (std::size_t r = 0; r < ladder.size(); ++r)
                    if (rung_count[r] > 0)
                        recordEpoch(("train.tune.loss." +
                                     ladder[r].name())
                                        .c_str(),
                                    epoch,
                                    rung_loss[r] /
                                        static_cast<double>(
                                            rung_count[r]));
            }
            obs::logf("phase=tune epoch=%zu loss=%.4f", epoch,
                      loss / batches);
            epochCacheTrack();
        }
        if (opts.mrEpochs > 0)
            result.mrEpochSeconds /= static_cast<double>(opts.mrEpochs);
    }

    // Per-sample MAC count for term-pair accounting.
    Tensor probe({1, 3, data.imageSize(), data.imageSize()});
    std::copy(data.testImages().data(),
              data.testImages().data() + probe.size(), probe.data());
    model.setTraining(false);
    const std::size_t macs = countModelMacs(model, probe);
    model.setTraining(true);
    model.setQuantContext(&trainer.context());

    // Evaluation across the ladder (or the single config).
    std::int64_t eval_hits0 = 0;
    std::int64_t eval_misses0 = 0;
    projCacheCounts(&eval_hits0, &eval_misses0);
    {
        MRQ_TRACE_SPAN("pipeline.eval");
        obs::InspectEvalScope inspect_eval;
        const SubModelLadder eval_set =
            single_cfg != nullptr ? SubModelLadder{*single_cfg} : ladder;

        // Inter-rung agreement probe: the same leading slice of the
        // test set is run through every rung, and each pair of rungs
        // is scored on logit KL + top-1 match.  The probe logits are
        // captured inside the per-rung loop, right after that rung's
        // evaluation, so batch-norm statistics are the ones its eval
        // used.
        Tensor probe_batch;
        std::vector<Tensor> probe_logits;
        if (obs::inspectSampling() && eval_set.size() > 1) {
            const std::size_t pn = std::min<std::size_t>(
                64, data.testImages().dim(0));
            probe_batch =
                Tensor({pn, 3, data.imageSize(), data.imageSize()});
            std::copy(data.testImages().data(),
                      data.testImages().data() + probe_batch.size(),
                      probe_batch.data());
        }

        for (std::size_t i = 0; i < eval_set.size(); ++i) {
            obs::faultInjectionPoint("rung",
                                     static_cast<std::int64_t>(i));
            const SubModelConfig& cfg = eval_set[i];
            SubModelResult r;
            r.config = cfg;
            r.metric = evalClassifier(trainer, data, cfg);
            if (!probe_batch.empty())
                probe_logits.push_back(
                    trainer.inferAt(probe_batch, cfg));
            r.termPairs = termPairCount(macs, cfg);
            recordSubModelEval(i, r);
            obs::logf("phase=eval rung=%s metric=%.4f term_pairs=%zu",
                      cfg.name().c_str(), r.metric, r.termPairs);
            result.subModels.push_back(std::move(r));
        }

        if (probe_logits.size() > 1) {
            obs::QuantInspector& inspector =
                obs::QuantInspector::instance();
            for (std::size_t i = 0; i < probe_logits.size(); ++i)
                for (std::size_t j = i + 1; j < probe_logits.size();
                     ++j) {
                    double kl = 0.0;
                    double top1 = 0.0;
                    logitAgreement(probe_logits[i], probe_logits[j],
                                   &kl, &top1);
                    inspector.recordRungAgreement(
                        run, eval_set[i].name(), eval_set[j].name(),
                        kl, top1,
                        static_cast<std::int64_t>(
                            probe_logits[i].dim(0)));
                }
        }
    }
    evalCacheHealth(trainer, run, eval_hits0, eval_misses0);
    checkLadderMonotonicity(trainer, run, result.subModels, true);
    obs::QuantInspector::instance().feedWatchdog(trainer.watchdog(), -1);
    return result;
}

} // namespace

PipelineResult
runClassifierMultiRes(Sequential& model, const SynthImages& data,
                      const SubModelLadder& ladder,
                      const PipelineOptions& opts)
{
    return classifierPipeline(model, data, ladder, opts, true, nullptr);
}

PipelineResult
runClassifierSingle(Sequential& model, const SynthImages& data,
                    const SubModelConfig& cfg, const PipelineOptions& opts)
{
    // Ladder only feeds the trainer's teacher bookkeeping; a single
    // entry keeps the draw degenerate.
    return classifierPipeline(model, data, {cfg}, opts, false, &cfg);
}

PipelineResult
runClassifierPostTraining(Sequential& model, const SynthImages& data,
                          const SubModelLadder& ladder,
                          const PipelineOptions& opts)
{
    return classifierPipeline(model, data, ladder, opts, false, nullptr);
}

// ---------------------------------------------------------------------
// Language modeling.
// ---------------------------------------------------------------------

double
evalLm(MultiResTrainer& trainer, LstmLm& model, const SynthText& data,
       const SubModelConfig& cfg, std::size_t bptt)
{
    trainer.context().config = cfg;
    return lmPerplexity(model, data.valid(), bptt);
}

namespace {

PipelineResult
lmPipeline(LstmLm& model, const SynthText& data,
           const SubModelLadder& ladder, const PipelineOptions& opts,
           const SubModelConfig* single_cfg)
{
    PipelineResult result;
    const char* run = single_cfg != nullptr ? "lm.single" : "lm.multires";
    obs::RunScope obs_run(pipelineManifest(run, opts, ladder),
                          opts.verbose);
    MultiResTrainer trainer(model, ladder, trainerOptions(opts, opts.fpLr));
    trainer.optimizer().setGradClip(1.0f);

    const std::vector<int>& stream = data.train();
    const std::size_t batch = opts.batchSize;
    const std::size_t col_len = (stream.size() - 1) / batch;
    const std::size_t windows =
        col_len > opts.bptt ? (col_len - 1) / opts.bptt : 0;
    require(windows > 0, "runLmMultiRes: training stream too short");

    std::vector<int> targets(opts.bptt * batch);
    auto make_batch = [&](std::size_t w, Tensor* input) {
        const std::size_t start = w * opts.bptt;
        const std::size_t t_len =
            std::min(opts.bptt, col_len - 1 - start);
        *input = Tensor({t_len, batch});
        targets.resize(t_len * batch);
        for (std::size_t t = 0; t < t_len; ++t)
            for (std::size_t b = 0; b < batch; ++b) {
                const std::size_t pos = b * col_len + start + t;
                (*input)(t, b) = static_cast<float>(stream[pos]);
                targets[t * batch + b] = stream[pos + 1];
            }
    };
    HardLossFn hard = [&targets](const Tensor& out, Tensor* dout) {
        return softmaxCrossEntropy(out, targets, dout);
    };
    SoftLossFn soft = [&opts](const Tensor& s, const Tensor& t,
                              Tensor* ds) {
        return distillationLoss(s, t, opts.distillTemperature, ds);
    };

    // Phase 1: full-precision pretraining.
    for (std::size_t epoch = 0; epoch < opts.fpEpochs; ++epoch) {
        obs::faultInjectionPoint("epoch",
                                 static_cast<std::int64_t>(epoch));
        MRQ_TRACE_SPAN("pipeline.fp_epoch");
        obs::PerfScope perf("pipeline.fp_epoch");
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.fpLr, static_cast<int>(epoch),
                     static_cast<int>(opts.fpEpochs)));
        double loss = 0.0;
        for (std::size_t w = 0; w < windows; ++w) {
            Tensor input;
            make_batch(w, &input);
            loss += trainer.trainIterationSingle(input, hard, fpConfig());
        }
        result.fpEpochSeconds += seconds(t0, Clock::now());
        recordEpoch("train.fp.loss", epoch, loss / windows);
        obs::logf("phase=fp epoch=%zu loss=%.4f", epoch, loss / windows);
    }
    if (opts.fpEpochs > 0)
        result.fpEpochSeconds /= static_cast<double>(opts.fpEpochs);
    model.calibrateWeightClips();
    result.fp32Metric = evalLm(trainer, model, data, fpConfig(), opts.bptt);
    if (obs::metricsEnabled())
        obs::MetricsRegistry::instance().setGauge("train.eval.fp32.metric",
                                                  result.fp32Metric);
    obs::logf("phase=eval rung=fp32 metric=%.4f", result.fp32Metric);

    // Phase 2: fine-tuning (multi-resolution or single-config).
    for (std::size_t epoch = 0; epoch < opts.mrEpochs; ++epoch) {
        obs::faultInjectionPoint("epoch",
                                 static_cast<std::int64_t>(epoch));
        MRQ_TRACE_SPAN("pipeline.tune_epoch");
            obs::PerfScope perf("pipeline.tune_epoch");
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.mrLr, static_cast<int>(epoch),
                     static_cast<int>(opts.mrEpochs)));
        double loss = 0.0;
        std::vector<double> rung_loss(ladder.size(), 0.0);
        std::vector<std::size_t> rung_count(ladder.size(), 0);
        for (std::size_t w = 0; w < windows; ++w) {
            Tensor input;
            make_batch(w, &input);
            if (single_cfg) {
                loss += trainer.trainIterationSingle(input, hard,
                                                     *single_cfg);
            } else {
                const MultiResTrainer::IterStats st =
                    trainer.trainIteration(input, hard, soft);
                loss += st.studentLoss;
                rung_loss[st.studentIndex] += st.studentLoss;
                rung_count[st.studentIndex] += 1;
            }
        }
        result.mrEpochSeconds += seconds(t0, Clock::now());
        recordEpoch("train.tune.loss", epoch, loss / windows);
        if (single_cfg == nullptr)
            for (std::size_t r = 0; r < ladder.size(); ++r)
                if (rung_count[r] > 0)
                    recordEpoch(
                        ("train.tune.loss." + ladder[r].name()).c_str(),
                        epoch,
                        rung_loss[r] /
                            static_cast<double>(rung_count[r]));
        obs::logf("phase=tune epoch=%zu loss=%.4f", epoch,
                  loss / windows);
        epochCacheTrack();
    }
    if (opts.mrEpochs > 0)
        result.mrEpochSeconds /= static_cast<double>(opts.mrEpochs);

    // MACs per token.
    Tensor probe({opts.bptt, 1});
    for (std::size_t t = 0; t < opts.bptt; ++t)
        probe(t, 0) = static_cast<float>(data.valid()[t]);
    model.setTraining(false);
    QuantContext macs_ctx;
    macs_ctx.collectStats = true;
    macs_ctx.config.mode = QuantMode::None;
    model.setQuantContext(&macs_ctx);
    model.forward(probe);
    const std::size_t macs_per_token = macs_ctx.macs / opts.bptt;
    model.setTraining(true);
    model.setQuantContext(&trainer.context());

    std::int64_t eval_hits0 = 0;
    std::int64_t eval_misses0 = 0;
    projCacheCounts(&eval_hits0, &eval_misses0);
    {
        MRQ_TRACE_SPAN("pipeline.eval");
        obs::InspectEvalScope inspect_eval;
        const SubModelLadder eval_set =
            single_cfg ? SubModelLadder{*single_cfg} : ladder;
        for (std::size_t i = 0; i < eval_set.size(); ++i) {
            obs::faultInjectionPoint("rung",
                                     static_cast<std::int64_t>(i));
            const SubModelConfig& cfg = eval_set[i];
            SubModelResult r;
            r.config = cfg;
            r.metric = evalLm(trainer, model, data, cfg, opts.bptt);
            r.termPairs = termPairCount(macs_per_token, cfg);
            recordSubModelEval(i, r);
            obs::logf("phase=eval rung=%s metric=%.4f term_pairs=%zu",
                      cfg.name().c_str(), r.metric, r.termPairs);
            result.subModels.push_back(std::move(r));
        }
    }
    evalCacheHealth(trainer, run, eval_hits0, eval_misses0);
    // Perplexity: lower is better.
    checkLadderMonotonicity(trainer, run, result.subModels, false);
    obs::QuantInspector::instance().feedWatchdog(trainer.watchdog(), -1);
    return result;
}

} // namespace

PipelineResult
runLmMultiRes(LstmLm& model, const SynthText& data,
              const SubModelLadder& ladder, const PipelineOptions& opts)
{
    return lmPipeline(model, data, ladder, opts, nullptr);
}

PipelineResult
runLmSingle(LstmLm& model, const SynthText& data,
            const SubModelConfig& cfg, const PipelineOptions& opts)
{
    return lmPipeline(model, data, {cfg}, opts, &cfg);
}

// ---------------------------------------------------------------------
// Detection.
// ---------------------------------------------------------------------

double
evalYolo(MultiResTrainer& trainer, const SynthDetect& data,
         const SubModelConfig& cfg, std::size_t eval_batch)
{
    const Tensor& images = data.testImages();
    const std::size_t n = images.dim(0);
    const std::size_t plane = 3 * data.imageSize() * data.imageSize();

    // Per-configuration batch-norm recalibration (as in the
    // classification pipeline).
    const std::size_t train_n = data.trainImages().dim(0);
    const std::size_t calib_batch = 32;
    for (std::size_t b = 0; b < 10; ++b) {
        const std::size_t base = (b * calib_batch) % train_n;
        const std::size_t len = std::min(calib_batch, train_n - base);
        if (len < 2)
            continue;
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(data.trainImages().data() + base * plane,
                  data.trainImages().data() + (base + len) * plane,
                  batch.data());
        trainer.calibrate(batch, cfg);
    }

    std::vector<std::vector<DetBox>> predictions;
    predictions.reserve(n);
    for (std::size_t base = 0; base < n; base += eval_batch) {
        const std::size_t len = std::min(eval_batch, n - base);
        Tensor batch({len, 3, data.imageSize(), data.imageSize()});
        std::copy(images.data() + base * plane,
                  images.data() + (base + len) * plane, batch.data());
        Tensor preds = trainer.inferAt(batch, cfg);
        auto decoded = decodeYolo(preds);
        for (auto& boxes : decoded)
            predictions.push_back(std::move(boxes));
    }
    return meanAveragePrecision(predictions, data.testBoxes(),
                                SynthDetect::kNumClasses);
}

namespace {

PipelineResult
yoloPipeline(TinyYolo& model, const SynthDetect& data,
             const SubModelLadder& ladder, const PipelineOptions& opts,
             const SubModelConfig* single_cfg)
{
    PipelineResult result;
    const char* run =
        single_cfg != nullptr ? "yolo.single" : "yolo.multires";
    obs::RunScope obs_run(pipelineManifest(run, opts, ladder),
                          opts.verbose);
    MultiResTrainer trainer(model, ladder, trainerOptions(opts, opts.fpLr));
    Batcher batcher(data.trainImages().dim(0), opts.batchSize, opts.seed);
    const std::size_t batches = batcher.batchesPerEpoch();
    const std::size_t plane = 3 * data.imageSize() * data.imageSize();

    std::vector<std::vector<DetBox>> batch_truth;
    auto make_batch = [&](Tensor* input) {
        const auto idx = batcher.next();
        *input =
            Tensor({idx.size(), 3, data.imageSize(), data.imageSize()});
        batch_truth.clear();
        for (std::size_t i = 0; i < idx.size(); ++i) {
            std::copy(data.trainImages().data() + idx[i] * plane,
                      data.trainImages().data() + (idx[i] + 1) * plane,
                      input->data() + i * plane);
            batch_truth.push_back(data.trainBoxes()[idx[i]]);
        }
    };
    HardLossFn hard = [&batch_truth](const Tensor& out, Tensor* dout) {
        return yoloLoss(out, batch_truth, dout);
    };
    // Detection distillation: match the teacher's raw prediction maps.
    SoftLossFn soft = [](const Tensor& s, const Tensor& t, Tensor* ds) {
        return mseLoss(s, t, ds);
    };

    for (std::size_t epoch = 0; epoch < opts.fpEpochs; ++epoch) {
        obs::faultInjectionPoint("epoch",
                                 static_cast<std::int64_t>(epoch));
        MRQ_TRACE_SPAN("pipeline.fp_epoch");
        obs::PerfScope perf("pipeline.fp_epoch");
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.fpLr, static_cast<int>(epoch),
                     static_cast<int>(opts.fpEpochs)));
        double loss = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
            Tensor input;
            make_batch(&input);
            loss += trainer.trainIterationSingle(input, hard, fpConfig());
        }
        result.fpEpochSeconds += seconds(t0, Clock::now());
        recordEpoch("train.fp.loss", epoch, loss / batches);
        obs::logf("phase=fp epoch=%zu loss=%.4f", epoch, loss / batches);
    }
    if (opts.fpEpochs > 0)
        result.fpEpochSeconds /= static_cast<double>(opts.fpEpochs);
    model.calibrateWeightClips();
    result.fp32Metric = evalYolo(trainer, data, fpConfig());
    if (obs::metricsEnabled())
        obs::MetricsRegistry::instance().setGauge("train.eval.fp32.metric",
                                                  result.fp32Metric);
    obs::logf("phase=eval rung=fp32 metric=%.4f", result.fp32Metric);

    for (std::size_t epoch = 0; epoch < opts.mrEpochs; ++epoch) {
        obs::faultInjectionPoint("epoch",
                                 static_cast<std::int64_t>(epoch));
        MRQ_TRACE_SPAN("pipeline.tune_epoch");
            obs::PerfScope perf("pipeline.tune_epoch");
        const auto t0 = Clock::now();
        trainer.optimizer().setLr(
            cosineLr(opts.mrLr, static_cast<int>(epoch),
                     static_cast<int>(opts.mrEpochs)));
        double loss = 0.0;
        std::vector<double> rung_loss(ladder.size(), 0.0);
        std::vector<std::size_t> rung_count(ladder.size(), 0);
        for (std::size_t b = 0; b < batches; ++b) {
            Tensor input;
            make_batch(&input);
            if (single_cfg) {
                loss += trainer.trainIterationSingle(input, hard,
                                                     *single_cfg);
            } else {
                const MultiResTrainer::IterStats st =
                    trainer.trainIteration(input, hard, soft);
                loss += st.studentLoss;
                rung_loss[st.studentIndex] += st.studentLoss;
                rung_count[st.studentIndex] += 1;
            }
        }
        result.mrEpochSeconds += seconds(t0, Clock::now());
        recordEpoch("train.tune.loss", epoch, loss / batches);
        if (single_cfg == nullptr)
            for (std::size_t r = 0; r < ladder.size(); ++r)
                if (rung_count[r] > 0)
                    recordEpoch(
                        ("train.tune.loss." + ladder[r].name()).c_str(),
                        epoch,
                        rung_loss[r] /
                            static_cast<double>(rung_count[r]));
        obs::logf("phase=tune epoch=%zu loss=%.4f", epoch,
                  loss / batches);
        epochCacheTrack();
    }
    if (opts.mrEpochs > 0)
        result.mrEpochSeconds /= static_cast<double>(opts.mrEpochs);

    Tensor probe({1, 3, data.imageSize(), data.imageSize()});
    std::copy(data.testImages().data(),
              data.testImages().data() + probe.size(), probe.data());
    model.setTraining(false);
    const std::size_t macs = countModelMacs(model, probe);
    model.setTraining(true);
    model.setQuantContext(&trainer.context());

    std::int64_t eval_hits0 = 0;
    std::int64_t eval_misses0 = 0;
    projCacheCounts(&eval_hits0, &eval_misses0);
    {
        MRQ_TRACE_SPAN("pipeline.eval");
        obs::InspectEvalScope inspect_eval;
        const SubModelLadder eval_set =
            single_cfg ? SubModelLadder{*single_cfg} : ladder;
        for (std::size_t i = 0; i < eval_set.size(); ++i) {
            obs::faultInjectionPoint("rung",
                                     static_cast<std::int64_t>(i));
            const SubModelConfig& cfg = eval_set[i];
            SubModelResult r;
            r.config = cfg;
            r.metric = evalYolo(trainer, data, cfg);
            r.termPairs = termPairCount(macs, cfg);
            recordSubModelEval(i, r);
            obs::logf("phase=eval rung=%s metric=%.4f term_pairs=%zu",
                      cfg.name().c_str(), r.metric, r.termPairs);
            result.subModels.push_back(std::move(r));
        }
    }
    evalCacheHealth(trainer, run, eval_hits0, eval_misses0);
    checkLadderMonotonicity(trainer, run, result.subModels, true);
    obs::QuantInspector::instance().feedWatchdog(trainer.watchdog(), -1);
    return result;
}

} // namespace

PipelineResult
runYoloMultiRes(TinyYolo& model, const SynthDetect& data,
                const SubModelLadder& ladder, const PipelineOptions& opts)
{
    return yoloPipeline(model, data, ladder, opts, nullptr);
}

PipelineResult
runYoloSingle(TinyYolo& model, const SynthDetect& data,
              const SubModelConfig& cfg, const PipelineOptions& opts)
{
    return yoloPipeline(model, data, {cfg}, opts, &cfg);
}

} // namespace mrq
