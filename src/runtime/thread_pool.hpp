/**
 * @file
 * Shared parallel execution substrate.
 *
 * A single persistent pool of worker threads serves every hot loop in
 * the library: the dense kernels in src/tensor, the group-quantization
 * loops in src/core, the per-image/per-channel loops in src/nn, and
 * the independent-tile sweeps in src/hw.  The pool size comes from the
 * MRQ_THREADS environment variable (default: hardware concurrency);
 * tests and benches may change it at runtime with resize().
 *
 * Determinism contract: work is split into chunks whose boundaries
 * depend only on the problem size and a caller-chosen grain — never on
 * the thread count.  parallelFor bodies write disjoint outputs, and
 * parallelReduce combines per-chunk partials sequentially in chunk
 * order, so every result is bit-identical at any thread count
 * (including the serial MRQ_THREADS=1 execution of the same chunks).
 *
 * Nesting: a parallel region entered from inside a worker (e.g. a
 * matmul called from a parallelized per-image conv loop) runs inline
 * on the calling thread, so nested parallelism degrades gracefully
 * instead of deadlocking the pool.
 */

#ifndef MRQ_RUNTIME_THREAD_POOL_HPP
#define MRQ_RUNTIME_THREAD_POOL_HPP

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/function_ref.hpp"

namespace mrq {

/** Persistent worker pool; use through the parallelFor helpers below. */
class ThreadPool
{
  public:
    /** The process-wide pool (created on first use). */
    static ThreadPool& instance();

    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total executing threads (workers + the calling thread). */
    std::size_t threadCount() const { return threads_; }

    /**
     * Change the pool size (joins and respawns workers).  Intended for
     * tests and benches that compare thread counts; must not be called
     * from inside a parallel region.
     */
    void resize(std::size_t threads);

    /**
     * Execute body(chunk) for every chunk in [0, num_chunks).  Chunk c
     * runs on thread (c mod threadCount()) — static round-robin, no
     * work stealing — and the calling thread participates as thread 0.
     * Exceptions thrown by chunk bodies are rethrown on the caller
     * (first one wins).  Runs inline when the pool has one thread,
     * there is one chunk, or the caller is itself a pool worker.
     * @p body is a non-owning reference (dispatch never allocates);
     * run() returns only after every chunk completed, so binding a
     * caller-frame lambda is always safe.
     */
    void run(std::size_t num_chunks,
             FunctionRef<void(std::size_t)> body);

  private:
    ThreadPool();

    void start(std::size_t threads);
    void stopWorkers();
    void workerLoop(std::size_t index, std::uint64_t seen);
    void runInline(std::size_t num_chunks,
                   FunctionRef<void(std::size_t)> body);

    std::size_t threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable jobCv_;
    std::condition_variable doneCv_;
    FunctionRef<void(std::size_t)> job_;
    std::size_t jobChunks_ = 0;
    /** Caller's interned span-path id at dispatch (workers inherit
     *  it); 0 when tracing is off or no span is open. */
    int jobTracePathId_ = 0;
    /** Caller's no-alloc guard depth + innermost site at dispatch;
     *  workers enforce (not report) it for the job's chunks. */
    int jobGuardDepth_ = 0;
    const char* jobGuardSite_ = nullptr;
    /** steady_clock ns at job publish (queue-wait accounting). */
    std::int64_t jobPublishNs_ = 0;
    std::uint64_t jobSeq_ = 0;
    std::size_t doneCount_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * Chunk geometry shared by the parallel helpers: boundaries depend
 * only on @p n and @p grain, never on the pool size.
 */
inline std::size_t
parallelChunks(std::size_t n, std::size_t grain)
{
    const std::size_t g = std::max<std::size_t>(1, grain);
    return (n + g - 1) / g;
}

/**
 * Grain (indices per chunk) for a loop whose per-index cost is about
 * @p work_per_index scalar operations: sized so one chunk amortizes
 * the dispatch overhead.  Depends only on the workload, keeping chunk
 * boundaries thread-count independent.
 */
inline std::size_t
parallelGrain(std::size_t work_per_index)
{
    constexpr std::size_t kTargetChunkWork = 1u << 16;
    const std::size_t w = std::max<std::size_t>(1, work_per_index);
    return std::max<std::size_t>(1, kTargetChunkWork / w);
}

/**
 * Parallel loop over [0, n) in chunks of @p grain indices: calls
 * body(begin, end) once per chunk.  The body must write only state
 * disjoint between chunks; under that contract results are
 * bit-identical at any thread count.  The body is passed by
 * non-owning reference — dispatching a capture-heavy lambda does not
 * heap-allocate, so loops under an obs::AllocGuard stay clean.
 */
inline void
parallelFor(std::size_t n, std::size_t grain,
            FunctionRef<void(std::size_t, std::size_t)> body)
{
    if (n == 0)
        return;
    const std::size_t g = std::max<std::size_t>(1, grain);
    const std::size_t chunks = parallelChunks(n, g);
    if (chunks == 1) {
        body(0, n);
        return;
    }
    ThreadPool::instance().run(chunks, [&](std::size_t c) {
        body(c * g, std::min(n, (c + 1) * g));
    });
}

/**
 * Deterministic parallel reduction over [0, n): maps each chunk to a
 * partial with map(begin, end) and folds the partials sequentially in
 * chunk order with combine(acc, partial).  Because the chunking and
 * the fold order are thread-count independent, the result is
 * bit-identical at any thread count (it may differ from a single
 * unchunked accumulation, which is fine — the chunked order IS the
 * defined order).
 */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(std::size_t n, std::size_t grain, T identity, MapFn map,
               CombineFn combine)
{
    if (n == 0)
        return identity;
    const std::size_t g = std::max<std::size_t>(1, grain);
    const std::size_t chunks = parallelChunks(n, g);
    if (chunks == 1)
        return combine(std::move(identity), map(std::size_t{0}, n));
    // Small reductions (every steady-state training-loop site: grad
    // norms, clip scans) keep their partials on the stack so the
    // whole fan-out is allocation-free under an obs::AllocGuard; only
    // outsized chunk counts fall back to the heap.
    constexpr std::size_t kInlinePartials = 32;
    if (chunks <= kInlinePartials) {
        std::array<std::optional<T>, kInlinePartials> partials;
        ThreadPool::instance().run(chunks, [&](std::size_t c) {
            partials[c].emplace(map(c * g, std::min(n, (c + 1) * g)));
        });
        T acc = std::move(identity);
        for (std::size_t c = 0; c < chunks; ++c)
            acc = combine(std::move(acc), std::move(*partials[c]));
        return acc;
    }
    std::vector<T> partials(chunks, identity);
    ThreadPool::instance().run(chunks, [&](std::size_t c) {
        partials[c] = map(c * g, std::min(n, (c + 1) * g));
    });
    T acc = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c)
        acc = combine(std::move(acc), std::move(partials[c]));
    return acc;
}

} // namespace mrq

#endif // MRQ_RUNTIME_THREAD_POOL_HPP
