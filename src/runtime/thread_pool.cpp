#include "runtime/thread_pool.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace mrq {

namespace {

/** Set while the current thread is executing chunks of a job. */
thread_local bool t_inside_parallel = false;

std::size_t
configuredThreads()
{
    std::size_t t = std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    if (const char* env = std::getenv("MRQ_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            t = static_cast<std::size_t>(v);
    }
    return std::max<std::size_t>(1, t);
}

} // namespace

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool()
{
    start(configuredThreads());
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::start(std::size_t threads)
{
    threads_ = std::max<std::size_t>(1, threads);
    workers_.reserve(threads_ - 1);
    // Workers must ignore every job sequence number issued before they
    // were spawned: jobSeq_ survives resize(), and a fresh worker that
    // started at seen = 0 would mistake the last finished job (already
    // cleared to job_ == nullptr) for a new one.  No job can be active
    // here — start() runs only from the constructor and resize().
    const std::uint64_t seen = jobSeq_;
    for (std::size_t i = 1; i < threads_; ++i)
        workers_.emplace_back([this, i, seen] { workerLoop(i, seen); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    jobCv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
    workers_.clear();
    stop_ = false;
}

void
ThreadPool::resize(std::size_t threads)
{
    require(!t_inside_parallel,
            "ThreadPool::resize: cannot resize from inside a parallel "
            "region");
    stopWorkers();
    start(threads);
}

void
ThreadPool::runInline(std::size_t num_chunks,
                      const std::function<void(std::size_t)>& body)
{
    for (std::size_t c = 0; c < num_chunks; ++c)
        body(c);
}

void
ThreadPool::run(std::size_t num_chunks,
                const std::function<void(std::size_t)>& body)
{
    if (num_chunks == 0)
        return;
    // Nested regions and the single-thread pool execute the same chunk
    // sequence inline; chunk boundaries are unchanged, so the results
    // match the parallel execution bit for bit.
    if (t_inside_parallel || threads_ == 1 || num_chunks == 1) {
        runInline(num_chunks, body);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &body;
        jobChunks_ = num_chunks;
        doneCount_ = 0;
        error_ = nullptr;
        ++jobSeq_;
    }
    jobCv_.notify_all();

    // The caller participates as thread 0 of the round-robin.
    t_inside_parallel = true;
    for (std::size_t c = 0; c < num_chunks; c += threads_) {
        try {
            body(c);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
    t_inside_parallel = false;

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return doneCount_ == threads_ - 1; });
    job_ = nullptr;
    jobChunks_ = 0;
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop(std::size_t index, std::uint64_t seen)
{
    for (;;) {
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t chunks = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            jobCv_.wait(lock, [&] { return stop_ || jobSeq_ != seen; });
            if (stop_)
                return;
            seen = jobSeq_;
            body = job_;
            chunks = jobChunks_;
        }

        t_inside_parallel = true;
        for (std::size_t c = index; c < chunks; c += threads_) {
            try {
                (*body)(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
        }
        t_inside_parallel = false;

        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++doneCount_;
        }
        doneCv_.notify_one();
    }
}

} // namespace mrq
