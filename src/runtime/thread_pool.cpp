#include "runtime/thread_pool.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"
#include "obs/crash_handler.hpp"
#include "obs/env.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heap_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace mrq {

namespace {

/** Set while the current thread is executing chunks of a job. */
thread_local bool t_inside_parallel = false;

/**
 * Timeline id for this executor's "pool.chunk" events, interned under
 * the current (inherited) span path; 0 when export is off.  Chunk
 * events go straight to the ring — no TraceSpan — so they appear on
 * the timeline without inserting a "pool.chunk" level into the span
 * paths user code records inside chunk bodies.
 */
int
chunkEventPathId()
{
    if (!obs::traceExportEnabled())
        return 0;
    return obs::internTracePathChild("pool.chunk");
}

// Pool activity metrics.  The counters are recorded at the top of
// run() — before the inline-vs-parallel branch — so their values
// depend only on chunk geometry, never on the pool size, and stay
// byte-identical in the JSONL sink at any MRQ_THREADS.  The timings
// (queue wait, per-executor busy time whose min/max spread is the
// chunk imbalance) are wall-clock and surface in the summary sink
// only.
obs::Counter c_regions("runtime.pool.regions");
obs::Counter c_chunks("runtime.pool.chunks");
obs::TimingStat t_queue_wait("runtime.pool.queue_wait");
obs::TimingStat t_executor_busy("runtime.pool.executor_busy");

std::size_t
configuredThreads()
{
    std::size_t t = std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    const long v = obs::envLong("MRQ_THREADS", 0);
    if (v > 0)
        t = static_cast<std::size_t>(v);
    return std::max<std::size_t>(1, t);
}

} // namespace

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool()
{
    start(configuredThreads());
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::start(std::size_t threads)
{
    threads_ = std::max<std::size_t>(1, threads);
    workers_.reserve(threads_ - 1);
    // Workers must ignore every job sequence number issued before they
    // were spawned: jobSeq_ survives resize(), and a fresh worker that
    // started at seen = 0 would mistake the last finished job (already
    // cleared to job_ == nullptr) for a new one.  No job can be active
    // here — start() runs only from the constructor and resize().
    const std::uint64_t seen = jobSeq_;
    for (std::size_t i = 1; i < threads_; ++i)
        workers_.emplace_back([this, i, seen] { workerLoop(i, seen); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    jobCv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
    workers_.clear();
    stop_ = false;
}

void
ThreadPool::resize(std::size_t threads)
{
    require(!t_inside_parallel,
            "ThreadPool::resize: cannot resize from inside a parallel "
            "region");
    stopWorkers();
    start(threads);
}

void
ThreadPool::runInline(std::size_t num_chunks,
                      FunctionRef<void(std::size_t)> body)
{
    const int chunk_path = chunkEventPathId();
    for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::int64_t c0 = chunk_path != 0 ? obs::nowNs() : 0;
        body(c);
        if (chunk_path != 0)
            obs::traceExportSpan(chunk_path, c0, obs::nowNs(),
                                 static_cast<std::int64_t>(c));
    }
}

void
ThreadPool::run(std::size_t num_chunks,
                FunctionRef<void(std::size_t)> body)
{
    if (num_chunks == 0)
        return;
    c_regions.add(1);
    c_chunks.add(static_cast<std::int64_t>(num_chunks));
    // Nested regions and the single-thread pool execute the same chunk
    // sequence inline; chunk boundaries are unchanged, so the results
    // match the parallel execution bit for bit.
    if (t_inside_parallel || threads_ == 1 || num_chunks == 1) {
        runInline(num_chunks, body);
        return;
    }

    const bool obs_on = obs::metricsEnabled();
    // The publish timestamp feeds both the queue-wait timing (metrics)
    // and the workers' idle/queue-wait wall-clock split (sampler).
    const bool stamp_publish = obs_on || obs::samplerRunning();
    // Workers inherit the caller's span path (as an interned id, valid
    // on any thread) so spans opened inside chunk bodies nest under
    // the span that launched the loop.
    const int trace_path_id = obs::currentTracePathId();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = body;
        jobChunks_ = num_chunks;
        jobTracePathId_ = trace_path_id;
        jobGuardDepth_ = obs::currentAllocGuardDepth();
        jobGuardSite_ = obs::currentAllocGuardSite();
        jobPublishNs_ = stamp_publish ? obs::nowNs() : 0;
        doneCount_ = 0;
        error_ = nullptr;
        ++jobSeq_;
    }
    jobCv_.notify_all();

    // The caller participates as thread 0 of the round-robin.  It
    // also (re-)registers as a permanently Busy thread with the
    // sampler's accounting — dispatching threads have no park state
    // the pool can observe.
    obs::noteThreadState(obs::ThreadState::Busy);
    const std::int64_t busy0 = obs_on ? obs::nowNs() : 0;
    const int chunk_path = chunkEventPathId();
    t_inside_parallel = true;
    for (std::size_t c = 0; c < num_chunks; c += threads_) {
        const std::int64_t c0 = chunk_path != 0 ? obs::nowNs() : 0;
        try {
            body(c);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        if (chunk_path != 0)
            obs::traceExportSpan(chunk_path, c0, obs::nowNs(),
                                 static_cast<std::int64_t>(c));
    }
    t_inside_parallel = false;
    if (obs_on)
        t_executor_busy.record(obs::nowNs() - busy0);

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return doneCount_ == threads_ - 1; });
    job_ = FunctionRef<void(std::size_t)>();
    jobChunks_ = 0;
    jobTracePathId_ = 0;
    jobGuardDepth_ = 0;
    jobGuardSite_ = nullptr;
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop(std::size_t index, std::uint64_t seen)
{
    // Shutdown signals stay with the main thread; the worker gets a
    // name for dumps, the stats endpoint and external tools.
    obs::blockShutdownSignalsInThisThread();
    char name[16];
    std::snprintf(name, sizeof name, "mrq-pool-%zu", index);
    obs::setCurrentThreadName(name);
    obs::noteThreadState(obs::ThreadState::Idle);
    for (;;) {
        FunctionRef<void(std::size_t)> body;
        std::size_t chunks = 0;
        int trace_path_id = 0;
        int guard_depth = 0;
        const char* guard_site = nullptr;
        std::int64_t publish_ns = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            jobCv_.wait(lock, [&] { return stop_ || jobSeq_ != seen; });
            if (stop_)
                return;
            seen = jobSeq_;
            body = job_;
            chunks = jobChunks_;
            trace_path_id = jobTracePathId_;
            guard_depth = jobGuardDepth_;
            guard_site = jobGuardSite_;
            publish_ns = jobPublishNs_;
        }

        const bool obs_on = obs::metricsEnabled();
        if (obs_on && publish_ns != 0)
            t_queue_wait.record(obs::nowNs() - publish_ns);
        // Wall-clock decomposition: the wait that just ended splits
        // into idle (before the job was published) and queue-wait
        // (published but not yet picked up).
        obs::noteThreadBusy(publish_ns);
        const std::int64_t busy0 = obs_on ? obs::nowNs() : 0;
        {
            obs::InheritedTracePath trace_guard(trace_path_id);
            obs::InheritedAllocGuard alloc_guard(guard_depth,
                                                 guard_site);
            const int chunk_path = chunkEventPathId();
            t_inside_parallel = true;
            for (std::size_t c = index; c < chunks; c += threads_) {
                const std::int64_t c0 =
                    chunk_path != 0 ? obs::nowNs() : 0;
                try {
                    body(c);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!error_)
                        error_ = std::current_exception();
                }
                if (chunk_path != 0)
                    obs::traceExportSpan(chunk_path, c0, obs::nowNs(),
                                         static_cast<std::int64_t>(c));
            }
            t_inside_parallel = false;
        }
        if (obs_on)
            t_executor_busy.record(obs::nowNs() - busy0);
        obs::noteThreadState(obs::ThreadState::Idle);

        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++doneCount_;
        }
        doneCv_.notify_one();
    }
}

} // namespace mrq
