/**
 * @file
 * Non-owning callable reference for synchronous dispatch.
 *
 * std::function is the wrong vehicle for the thread pool's hot path:
 * its small-buffer optimization holds only ~16 bytes on libstdc++,
 * so every capture-heavy parallelFor body heap-allocates at dispatch
 * — which both costs time in the steady-state training loop and
 * makes "this path must not allocate" (obs::AllocGuard) unprovable
 * for any code that fans out through the pool.
 *
 * FunctionRef is two raw pointers (erased object + invoker thunk),
 * trivially copyable, and never allocates.  It does NOT own the
 * callable: the referenced object must outlive every call.  That
 * contract holds trivially for the pool, whose run() blocks until
 * all chunks complete, so the caller's lambda frame is live for the
 * whole dispatch.  Do not store a FunctionRef beyond the call that
 * received it.
 */

#ifndef MRQ_RUNTIME_FUNCTION_REF_HPP
#define MRQ_RUNTIME_FUNCTION_REF_HPP

#include <memory>
#include <type_traits>
#include <utility>

namespace mrq {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    /** Null reference; calling it is undefined (check with bool). */
    constexpr FunctionRef() = default;

    /** Bind to any callable; @p f must outlive every invocation. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>,
                                  FunctionRef> &&
                  std::is_invocable_r_v<R, F&, Args...>>>
    FunctionRef(F&& f) // NOLINT: implicit by design (lambda at call site)
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(
                  obj))(std::forward<Args>(args)...);
          })
    {
    }

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return call_ != nullptr; }

  private:
    void* obj_ = nullptr;
    R (*call_)(void*, Args...) = nullptr;
};

} // namespace mrq

#endif // MRQ_RUNTIME_FUNCTION_REF_HPP
