#include "models/classifiers.hpp"

#include "models/blocks.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace mrq {

std::unique_ptr<Sequential>
buildResNetTiny(Rng& rng, std::size_t classes)
{
    auto net = std::make_unique<Sequential>();
    // Input data quantizer (images arrive in [0, 1]).
    net->emplace<PactQuant>(1.0f);
    // Stem.
    net->emplace<Conv2d>(3, 8, 3, 1, 1, rng);
    net->emplace<BatchNorm2d>(8);
    net->emplace<PactQuant>();
    // Stages.
    net->emplace<BasicBlock>(8, 8, 1, rng);
    net->emplace<BasicBlock>(8, 16, 2, rng);
    net->emplace<BasicBlock>(16, 32, 2, rng);
    // Head.
    net->emplace<GlobalAvgPool>();
    net->emplace<PactQuant>(1.0f);
    net->emplace<Linear>(32, classes, rng, true);
    return net;
}

std::unique_ptr<Sequential>
buildResNetMid(Rng& rng, std::size_t classes)
{
    auto net = std::make_unique<Sequential>();
    net->emplace<PactQuant>(1.0f);
    net->emplace<Conv2d>(3, 8, 3, 1, 1, rng);
    net->emplace<BatchNorm2d>(8);
    net->emplace<PactQuant>();
    // Bottleneck stages: (in, mid, out, stride).
    net->emplace<BottleneckBlock>(8, 4, 16, 1, rng);
    net->emplace<BottleneckBlock>(16, 8, 16, 1, rng);
    net->emplace<BottleneckBlock>(16, 8, 32, 2, rng);
    net->emplace<BottleneckBlock>(32, 16, 32, 1, rng);
    net->emplace<BottleneckBlock>(32, 16, 48, 2, rng);
    net->emplace<GlobalAvgPool>();
    net->emplace<PactQuant>(1.0f);
    net->emplace<Linear>(48, classes, rng, true);
    return net;
}

std::unique_ptr<Sequential>
buildMobileNetTiny(Rng& rng, std::size_t classes)
{
    auto net = std::make_unique<Sequential>();
    net->emplace<PactQuant>(1.0f);
    net->emplace<Conv2d>(3, 8, 3, 1, 1, rng);
    net->emplace<BatchNorm2d>(8);
    net->emplace<PactQuant>();
    // Inverted residual stages: (in, out, stride, expand).
    net->emplace<InvertedResidual>(8, 8, 1, 2, rng);
    net->emplace<InvertedResidual>(8, 16, 2, 2, rng);
    net->emplace<InvertedResidual>(16, 16, 1, 2, rng);
    net->emplace<InvertedResidual>(16, 24, 2, 2, rng);
    net->emplace<GlobalAvgPool>();
    net->emplace<PactQuant>(1.0f);
    net->emplace<Linear>(24, classes, rng, true);
    return net;
}

std::unique_ptr<Sequential>
buildClassifier(const std::string& name, Rng& rng, std::size_t classes)
{
    if (name == "resnet-tiny")
        return buildResNetTiny(rng, classes);
    if (name == "resnet-mid")
        return buildResNetMid(rng, classes);
    if (name == "mobilenet-tiny")
        return buildMobileNetTiny(rng, classes);
    fatal("buildClassifier: unknown model '", name, "'");
}

} // namespace mrq
