#include "models/tiny_yolo.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"

namespace mrq {

namespace {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

TinyYolo::TinyYolo(Rng& rng)
{
    net_ = std::make_unique<Sequential>();
    net_->emplace<PactQuant>(1.0f);
    net_->emplace<Conv2d>(3, 8, 3, 1, 1, rng);
    net_->emplace<BatchNorm2d>(8);
    net_->emplace<PactQuant>();
    net_->emplace<Conv2d>(8, 16, 3, 2, 1, rng);
    net_->emplace<BatchNorm2d>(16);
    net_->emplace<PactQuant>();
    net_->emplace<Conv2d>(16, 24, 3, 2, 1, rng);
    net_->emplace<BatchNorm2d>(24);
    net_->emplace<PactQuant>();
    net_->emplace<Conv2d>(24, 32, 3, 2, 1, rng);
    net_->emplace<BatchNorm2d>(32);
    net_->emplace<PactQuant>();
    net_->emplace<Conv2d>(32, 5 + kClasses, 1, 1, 0, rng, true);
}

Tensor
TinyYolo::forward(const Tensor& x)
{
    Tensor y = net_->forward(x);
    require(y.dim(2) == kGrid && y.dim(3) == kGrid,
            "TinyYolo: unexpected grid size ", y.shapeString());
    return y;
}

Tensor
TinyYolo::backward(const Tensor& dy)
{
    return net_->backward(dy);
}

void
TinyYolo::collectParameters(std::vector<Parameter*>& out)
{
    net_->collectParameters(out);
}

void
TinyYolo::setTraining(bool training)
{
    Module::setTraining(training);
    net_->setTraining(training);
}

void
TinyYolo::setQuantContext(QuantContext* ctx)
{
    net_->setQuantContext(ctx);
}

float
yoloLoss(const Tensor& preds,
         const std::vector<std::vector<DetBox>>& truth, Tensor* dpreds)
{
    constexpr std::size_t S = TinyYolo::kGrid;
    constexpr std::size_t C = TinyYolo::kClasses;
    require(preds.rank() == 4 && preds.dim(1) == 5 + C &&
                preds.dim(2) == S && preds.dim(3) == S,
            "yoloLoss: prediction shape mismatch");
    const std::size_t n = preds.dim(0);
    require(truth.size() == n, "yoloLoss: batch size mismatch");

    constexpr float lambda_coord = 5.0f;
    constexpr float lambda_obj = 1.0f;
    constexpr float lambda_noobj = 0.5f;
    constexpr float lambda_cls = 1.0f;

    if (dpreds)
        *dpreds = Tensor(preds.shape());

    double loss = 0.0;
    const float inv_n = 1.0f / static_cast<float>(n * S * S);

    // Cell assignment: the cell containing each box center owns it.
    for (std::size_t img = 0; img < n; ++img) {
        // box index owning each cell, or -1.
        int owner[S][S];
        for (auto& row : owner)
            std::fill(row, row + S, -1);
        for (std::size_t b = 0; b < truth[img].size(); ++b) {
            const DetBox& box = truth[img][b];
            auto gx = static_cast<std::size_t>(box.cx * S);
            auto gy = static_cast<std::size_t>(box.cy * S);
            gx = std::min(gx, S - 1);
            gy = std::min(gy, S - 1);
            owner[gy][gx] = static_cast<int>(b);
        }

        for (std::size_t gy = 0; gy < S; ++gy) {
            for (std::size_t gx = 0; gx < S; ++gx) {
                const float z_obj = preds(img, 0, gy, gx);
                const float p_obj = sigmoid(z_obj);
                const int b = owner[gy][gx];
                if (b < 0) {
                    // No-object cell: push objectness down.
                    loss += lambda_noobj * inv_n *
                            (-std::log(std::max(1.0f - p_obj, 1e-7f)));
                    if (dpreds)
                        (*dpreds)(img, 0, gy, gx) +=
                            lambda_noobj * inv_n * p_obj;
                    continue;
                }
                const DetBox& box =
                    truth[img][static_cast<std::size_t>(b)];

                // Objectness up.
                loss += lambda_obj * inv_n *
                        (-std::log(std::max(p_obj, 1e-7f)));
                if (dpreds)
                    (*dpreds)(img, 0, gy, gx) +=
                        lambda_obj * inv_n * (p_obj - 1.0f);

                // Box regression on sigmoid-squashed coordinates.
                const float targets[4] = {
                    box.cx * S - static_cast<float>(gx), // in-cell x
                    box.cy * S - static_cast<float>(gy), // in-cell y
                    box.w,
                    box.h,
                };
                for (std::size_t k = 0; k < 4; ++k) {
                    const float z = preds(img, 1 + k, gy, gx);
                    const float p = sigmoid(z);
                    const float d = p - targets[k];
                    loss += lambda_coord * inv_n * d * d;
                    if (dpreds)
                        (*dpreds)(img, 1 + k, gy, gx) +=
                            lambda_coord * inv_n * 2.0f * d * p *
                            (1.0f - p);
                }

                // Per-class BCE.
                for (std::size_t c = 0; c < C; ++c) {
                    const float z = preds(img, 5 + c, gy, gx);
                    const float p = sigmoid(z);
                    const float y =
                        static_cast<std::size_t>(box.classId) == c
                            ? 1.0f
                            : 0.0f;
                    loss += lambda_cls * inv_n *
                            (-(y * std::log(std::max(p, 1e-7f)) +
                               (1.0f - y) *
                                   std::log(std::max(1.0f - p, 1e-7f))));
                    if (dpreds)
                        (*dpreds)(img, 5 + c, gy, gx) +=
                            lambda_cls * inv_n * (p - y);
                }
            }
        }
    }
    return static_cast<float>(loss);
}

std::vector<std::vector<DetBox>>
decodeYolo(const Tensor& preds, float conf_threshold, float nms_iou)
{
    constexpr std::size_t S = TinyYolo::kGrid;
    constexpr std::size_t C = TinyYolo::kClasses;
    require(preds.rank() == 4 && preds.dim(1) == 5 + C,
            "decodeYolo: prediction shape mismatch");
    const std::size_t n = preds.dim(0);

    std::vector<std::vector<DetBox>> out(n);
    for (std::size_t img = 0; img < n; ++img) {
        std::vector<DetBox> candidates;
        for (std::size_t gy = 0; gy < S; ++gy) {
            for (std::size_t gx = 0; gx < S; ++gx) {
                const float obj = sigmoid(preds(img, 0, gy, gx));
                // Best class for this cell.
                std::size_t best_c = 0;
                float best_p = -1.0f;
                for (std::size_t c = 0; c < C; ++c) {
                    const float p = sigmoid(preds(img, 5 + c, gy, gx));
                    if (p > best_p) {
                        best_p = p;
                        best_c = c;
                    }
                }
                const float conf = obj * best_p;
                if (conf < conf_threshold)
                    continue;
                DetBox box;
                box.classId = static_cast<int>(best_c);
                box.confidence = conf;
                box.cx = (static_cast<float>(gx) +
                          sigmoid(preds(img, 1, gy, gx))) /
                         static_cast<float>(S);
                box.cy = (static_cast<float>(gy) +
                          sigmoid(preds(img, 2, gy, gx))) /
                         static_cast<float>(S);
                box.w = sigmoid(preds(img, 3, gy, gx));
                box.h = sigmoid(preds(img, 4, gy, gx));
                candidates.push_back(box);
            }
        }
        // Greedy per-class NMS.
        std::sort(candidates.begin(), candidates.end(),
                  [](const DetBox& a, const DetBox& b) {
                      return a.confidence > b.confidence;
                  });
        for (const DetBox& cand : candidates) {
            bool keep = true;
            for (const DetBox& kept : out[img]) {
                if (kept.classId == cand.classId &&
                    boxIou(kept, cand) > nms_iou) {
                    keep = false;
                    break;
                }
            }
            if (keep)
                out[img].push_back(cand);
        }
    }
    return out;
}

} // namespace mrq
