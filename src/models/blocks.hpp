/**
 * @file
 * Composite CNN blocks: residual basic block (ResNet-18 style),
 * bottleneck block (ResNet-50 style), and inverted residual
 * (MobileNet-v2 style).  Each block routes gradients through both the
 * main path and the skip connection.
 */

#ifndef MRQ_MODELS_BLOCKS_HPP
#define MRQ_MODELS_BLOCKS_HPP

#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/module.hpp"

namespace mrq {

/** Two 3x3 convs with BN/PACT and an identity or 1x1 projection skip. */
class BasicBlock : public Module
{
  public:
    BasicBlock(std::size_t in_channels, std::size_t out_channels,
               std::size_t stride, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void collectParameters(std::vector<Parameter*>& out) override;
    void setTraining(bool training) override;
    void setQuantContext(QuantContext* ctx) override;
    void calibrateWeightClips() override;

  private:
    std::unique_ptr<Conv2d> conv1_, conv2_, convDown_;
    std::unique_ptr<BatchNorm2d> bn1_, bn2_, bnDown_;
    std::unique_ptr<PactQuant> act1_, act2_;
};

/** 1x1 reduce -> 3x3 -> 1x1 expand bottleneck with skip. */
class BottleneckBlock : public Module
{
  public:
    /**
     * @param in_channels  Block input channels.
     * @param mid_channels Reduced width of the 3x3 conv.
     * @param out_channels Expanded output channels.
     * @param stride       Stride of the 3x3 conv.
     */
    BottleneckBlock(std::size_t in_channels, std::size_t mid_channels,
                    std::size_t out_channels, std::size_t stride, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void collectParameters(std::vector<Parameter*>& out) override;
    void setTraining(bool training) override;
    void setQuantContext(QuantContext* ctx) override;
    void calibrateWeightClips() override;

  private:
    std::unique_ptr<Conv2d> conv1_, conv2_, conv3_, convDown_;
    std::unique_ptr<BatchNorm2d> bn1_, bn2_, bn3_, bnDown_;
    std::unique_ptr<PactQuant> act1_, act2_, act3_;
};

/** MobileNet-v2 inverted residual: expand, depthwise, project. */
class InvertedResidual : public Module
{
  public:
    /**
     * @param in_channels  Block input channels.
     * @param out_channels Block output channels.
     * @param stride       Depthwise stride.
     * @param expand       Expansion factor t.
     */
    InvertedResidual(std::size_t in_channels, std::size_t out_channels,
                     std::size_t stride, std::size_t expand, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void collectParameters(std::vector<Parameter*>& out) override;
    void setTraining(bool training) override;
    void setQuantContext(QuantContext* ctx) override;
    void calibrateWeightClips() override;

  private:
    bool useSkip_;
    std::unique_ptr<Conv2d> expand_, project_;
    std::unique_ptr<DepthwiseConv2d> depthwise_;
    std::unique_ptr<BatchNorm2d> bnExpand_, bnDepth_, bnProject_;
    std::unique_ptr<PactQuant> actExpand_, actDepth_;
};

} // namespace mrq

#endif // MRQ_MODELS_BLOCKS_HPP
