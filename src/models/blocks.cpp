#include "models/blocks.hpp"

namespace mrq {

namespace {

/** Forward every module in @p mods that is non-null. */
template <typename... Mods>
void
setTrainingAll(bool training, Mods&... mods)
{
    (..., (mods ? mods->setTraining(training) : void()));
}

template <typename... Mods>
void
setContextAll(QuantContext* ctx, Mods&... mods)
{
    (..., (mods ? mods->setQuantContext(ctx) : void()));
}

template <typename... Mods>
void
collectAll(std::vector<Parameter*>& out, Mods&... mods)
{
    (..., (mods ? mods->collectParameters(out) : void()));
}

} // namespace

BasicBlock::BasicBlock(std::size_t in_channels, std::size_t out_channels,
                       std::size_t stride, Rng& rng)
{
    conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride,
                                      1, rng);
    bn1_ = std::make_unique<BatchNorm2d>(out_channels);
    act1_ = std::make_unique<PactQuant>();
    conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                      rng);
    bn2_ = std::make_unique<BatchNorm2d>(out_channels);
    act2_ = std::make_unique<PactQuant>();
    if (stride != 1 || in_channels != out_channels) {
        convDown_ = std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                             stride, 0, rng);
        bnDown_ = std::make_unique<BatchNorm2d>(out_channels);
    }
}

Tensor
BasicBlock::forward(const Tensor& x)
{
    Tensor main = bn2_->forward(
        conv2_->forward(act1_->forward(bn1_->forward(conv1_->forward(x)))));
    Tensor skip = convDown_ ? bnDown_->forward(convDown_->forward(x)) : x;
    main += skip;
    return act2_->forward(main);
}

Tensor
BasicBlock::backward(const Tensor& dy)
{
    Tensor d = act2_->backward(dy);
    Tensor d_main = conv1_->backward(bn1_->backward(
        act1_->backward(conv2_->backward(bn2_->backward(d)))));
    Tensor d_skip =
        convDown_ ? convDown_->backward(bnDown_->backward(d)) : d;
    d_main += d_skip;
    return d_main;
}

void
BasicBlock::collectParameters(std::vector<Parameter*>& out)
{
    collectAll(out, conv1_, bn1_, act1_, conv2_, bn2_, act2_, convDown_,
               bnDown_);
}

void
BasicBlock::setTraining(bool training)
{
    Module::setTraining(training);
    setTrainingAll(training, conv1_, bn1_, act1_, conv2_, bn2_, act2_,
                   convDown_, bnDown_);
}

void
BasicBlock::setQuantContext(QuantContext* ctx)
{
    setContextAll(ctx, conv1_, act1_, conv2_, act2_, convDown_);
}

void
BasicBlock::calibrateWeightClips()
{
    conv1_->calibrateWeightClips();
    conv2_->calibrateWeightClips();
    if (convDown_)
        convDown_->calibrateWeightClips();
}

BottleneckBlock::BottleneckBlock(std::size_t in_channels,
                                 std::size_t mid_channels,
                                 std::size_t out_channels,
                                 std::size_t stride, Rng& rng)
{
    conv1_ = std::make_unique<Conv2d>(in_channels, mid_channels, 1, 1, 0,
                                      rng);
    bn1_ = std::make_unique<BatchNorm2d>(mid_channels);
    act1_ = std::make_unique<PactQuant>();
    conv2_ = std::make_unique<Conv2d>(mid_channels, mid_channels, 3, stride,
                                      1, rng);
    bn2_ = std::make_unique<BatchNorm2d>(mid_channels);
    act2_ = std::make_unique<PactQuant>();
    conv3_ = std::make_unique<Conv2d>(mid_channels, out_channels, 1, 1, 0,
                                      rng);
    bn3_ = std::make_unique<BatchNorm2d>(out_channels);
    act3_ = std::make_unique<PactQuant>();
    if (stride != 1 || in_channels != out_channels) {
        convDown_ = std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                             stride, 0, rng);
        bnDown_ = std::make_unique<BatchNorm2d>(out_channels);
    }
}

Tensor
BottleneckBlock::forward(const Tensor& x)
{
    Tensor main = act1_->forward(bn1_->forward(conv1_->forward(x)));
    main = act2_->forward(bn2_->forward(conv2_->forward(main)));
    main = bn3_->forward(conv3_->forward(main));
    Tensor skip = convDown_ ? bnDown_->forward(convDown_->forward(x)) : x;
    main += skip;
    return act3_->forward(main);
}

Tensor
BottleneckBlock::backward(const Tensor& dy)
{
    Tensor d = act3_->backward(dy);
    Tensor d_main = bn3_->backward(d);
    d_main = conv3_->backward(d_main);
    d_main = act2_->backward(d_main);
    d_main = bn2_->backward(d_main);
    d_main = conv2_->backward(d_main);
    d_main = act1_->backward(d_main);
    d_main = bn1_->backward(d_main);
    d_main = conv1_->backward(d_main);
    Tensor d_skip =
        convDown_ ? convDown_->backward(bnDown_->backward(d)) : d;
    d_main += d_skip;
    return d_main;
}

void
BottleneckBlock::collectParameters(std::vector<Parameter*>& out)
{
    collectAll(out, conv1_, bn1_, act1_, conv2_, bn2_, act2_, conv3_, bn3_,
               act3_, convDown_, bnDown_);
}

void
BottleneckBlock::setTraining(bool training)
{
    Module::setTraining(training);
    setTrainingAll(training, conv1_, bn1_, act1_, conv2_, bn2_, act2_,
                   conv3_, bn3_, act3_, convDown_, bnDown_);
}

void
BottleneckBlock::setQuantContext(QuantContext* ctx)
{
    setContextAll(ctx, conv1_, act1_, conv2_, act2_, conv3_, act3_,
                  convDown_);
}

void
BottleneckBlock::calibrateWeightClips()
{
    conv1_->calibrateWeightClips();
    conv2_->calibrateWeightClips();
    conv3_->calibrateWeightClips();
    if (convDown_)
        convDown_->calibrateWeightClips();
}

InvertedResidual::InvertedResidual(std::size_t in_channels,
                                   std::size_t out_channels,
                                   std::size_t stride, std::size_t expand,
                                   Rng& rng)
    : useSkip_(stride == 1 && in_channels == out_channels)
{
    const std::size_t mid = in_channels * expand;
    expand_ = std::make_unique<Conv2d>(in_channels, mid, 1, 1, 0, rng);
    bnExpand_ = std::make_unique<BatchNorm2d>(mid);
    actExpand_ = std::make_unique<PactQuant>();
    depthwise_ = std::make_unique<DepthwiseConv2d>(mid, 3, stride, 1, rng);
    bnDepth_ = std::make_unique<BatchNorm2d>(mid);
    actDepth_ = std::make_unique<PactQuant>();
    project_ = std::make_unique<Conv2d>(mid, out_channels, 1, 1, 0, rng);
    bnProject_ = std::make_unique<BatchNorm2d>(out_channels);
}

Tensor
InvertedResidual::forward(const Tensor& x)
{
    Tensor h = actExpand_->forward(bnExpand_->forward(expand_->forward(x)));
    h = actDepth_->forward(bnDepth_->forward(depthwise_->forward(h)));
    h = bnProject_->forward(project_->forward(h));
    if (useSkip_)
        h += x;
    return h;
}

Tensor
InvertedResidual::backward(const Tensor& dy)
{
    Tensor d = bnProject_->backward(dy);
    d = project_->backward(d);
    d = actDepth_->backward(d);
    d = bnDepth_->backward(d);
    d = depthwise_->backward(d);
    d = actExpand_->backward(d);
    d = bnExpand_->backward(d);
    d = expand_->backward(d);
    if (useSkip_)
        d += dy;
    return d;
}

void
InvertedResidual::collectParameters(std::vector<Parameter*>& out)
{
    collectAll(out, expand_, bnExpand_, actExpand_, depthwise_, bnDepth_,
               actDepth_, project_, bnProject_);
}

void
InvertedResidual::setTraining(bool training)
{
    Module::setTraining(training);
    setTrainingAll(training, expand_, bnExpand_, actExpand_, depthwise_,
                   bnDepth_, actDepth_, project_, bnProject_);
}

void
InvertedResidual::setQuantContext(QuantContext* ctx)
{
    setContextAll(ctx, expand_, actExpand_, depthwise_, actDepth_,
                  project_);
}

void
InvertedResidual::calibrateWeightClips()
{
    expand_->calibrateWeightClips();
    depthwise_->calibrateWeightClips();
    project_->calibrateWeightClips();
}

} // namespace mrq
