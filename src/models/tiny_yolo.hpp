/**
 * @file
 * Single-scale YOLO-style detector (YOLO-v5s stand-in) for the
 * SynthDetect dataset, with the full grid loss (objectness BCE, box
 * regression, per-class BCE) and confidence-decoded predictions.
 */

#ifndef MRQ_MODELS_TINY_YOLO_HPP
#define MRQ_MODELS_TINY_YOLO_HPP

#include <memory>

#include "data/synth_detect.hpp"
#include "nn/sequential.hpp"

namespace mrq {

/** Grid detector: [N, 3, 32, 32] -> [N, 5 + C, S, S] raw predictions. */
class TinyYolo : public Module
{
  public:
    static constexpr std::size_t kGrid = 4;
    static constexpr std::size_t kClasses = SynthDetect::kNumClasses;

    explicit TinyYolo(Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void collectParameters(std::vector<Parameter*>& out) override;
    void setTraining(bool training) override;
    void setQuantContext(QuantContext* ctx) override;

    void
    calibrateWeightClips() override
    {
        net_->calibrateWeightClips();
    }

  private:
    std::unique_ptr<Sequential> net_;
};

/**
 * YOLO grid loss.  Channel layout per cell: [obj, tx, ty, tw, th,
 * class_0..class_{C-1}].  Box coordinates pass through sigmoids so
 * they live in [0, 1] (offsets within the cell for tx/ty, normalized
 * image fractions for tw/th).
 *
 * @param preds  [N, 5 + C, S, S] raw network output.
 * @param truth  Per-image ground-truth boxes.
 * @param dpreds Optional gradient out-parameter.
 * @return Weighted total loss.
 */
float yoloLoss(const Tensor& preds,
               const std::vector<std::vector<DetBox>>& truth,
               Tensor* dpreds = nullptr);

/**
 * Decode raw predictions into confidence-scored boxes with greedy NMS.
 *
 * @param preds          [N, 5 + C, S, S] raw network output.
 * @param conf_threshold Minimum objectness * class score.
 * @param nms_iou        IoU above which lower-scored boxes are dropped.
 */
std::vector<std::vector<DetBox>> decodeYolo(const Tensor& preds,
                                            float conf_threshold = 0.3f,
                                            float nms_iou = 0.5f);

} // namespace mrq

#endif // MRQ_MODELS_TINY_YOLO_HPP
