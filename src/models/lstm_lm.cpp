#include "models/lstm_lm.hpp"

#include <cmath>

#include "nn/loss.hpp"

namespace mrq {

LstmLm::LstmLm(std::size_t vocab, std::size_t embed, std::size_t hidden,
               float dropout, Rng& rng)
    : vocab_(vocab), hidden_(hidden)
{
    embedding_ = std::make_unique<Embedding>(vocab, embed, rng);
    act0_ = std::make_unique<PactQuant>(1.0f, true);
    lstm1_ = std::make_unique<Lstm>(embed, hidden, rng);
    act1_ = std::make_unique<PactQuant>(1.0f, true);
    drop1_ = std::make_unique<Dropout>(dropout, 0x111);
    lstm2_ = std::make_unique<Lstm>(hidden, hidden, rng);
    act2_ = std::make_unique<PactQuant>(1.0f, true);
    drop2_ = std::make_unique<Dropout>(dropout, 0x222);
    decoder_ = std::make_unique<Linear>(hidden, vocab, rng, true);
}

Tensor
LstmLm::forward(const Tensor& x)
{
    require(x.rank() == 2, "LstmLm::forward: [T, N] token tensor required");
    cachedT_ = x.dim(0);
    cachedN_ = x.dim(1);

    Tensor h = embedding_->forward(x);       // [T, N, E]
    h = act0_->forward(h);
    h = lstm1_->forward(h);                  // [T, N, H]
    h = act1_->forward(h);
    h = drop1_->forward(h);
    h = lstm2_->forward(h);
    h = act2_->forward(h);
    h = drop2_->forward(h);
    h.reshape({cachedT_ * cachedN_, hidden_});
    return decoder_->forward(h);             // [T*N, V]
}

Tensor
LstmLm::backward(const Tensor& dy)
{
    Tensor d = decoder_->backward(dy);
    d.reshape({cachedT_, cachedN_, hidden_});
    d = drop2_->backward(d);
    d = act2_->backward(d);
    d = lstm2_->backward(d);
    d = drop1_->backward(d);
    d = act1_->backward(d);
    d = lstm1_->backward(d);
    d = act0_->backward(d);
    return embedding_->backward(d);
}

void
LstmLm::collectParameters(std::vector<Parameter*>& out)
{
    embedding_->collectParameters(out);
    act0_->collectParameters(out);
    lstm1_->collectParameters(out);
    act1_->collectParameters(out);
    lstm2_->collectParameters(out);
    act2_->collectParameters(out);
    decoder_->collectParameters(out);
}

void
LstmLm::setTraining(bool training)
{
    Module::setTraining(training);
    embedding_->setTraining(training);
    act0_->setTraining(training);
    lstm1_->setTraining(training);
    act1_->setTraining(training);
    drop1_->setTraining(training);
    lstm2_->setTraining(training);
    act2_->setTraining(training);
    drop2_->setTraining(training);
    decoder_->setTraining(training);
}

void
LstmLm::calibrateWeightClips()
{
    lstm1_->calibrateWeightClips();
    lstm2_->calibrateWeightClips();
    decoder_->calibrateWeightClips();
}

void
LstmLm::setQuantContext(QuantContext* ctx)
{
    act0_->setQuantContext(ctx);
    lstm1_->setQuantContext(ctx);
    act1_->setQuantContext(ctx);
    lstm2_->setQuantContext(ctx);
    act2_->setQuantContext(ctx);
    decoder_->setQuantContext(ctx);
}

double
lmPerplexity(LstmLm& model, const std::vector<int>& tokens,
             std::size_t bptt, std::size_t batch)
{
    require(tokens.size() > bptt * batch + 1,
            "lmPerplexity: token stream too short");
    model.setTraining(false);

    // Fold the stream into `batch` parallel columns (the standard
    // truncated-BPTT layout) and walk windows of length bptt.
    const std::size_t col_len = (tokens.size() - 1) / batch;
    double nll = 0.0;
    std::size_t count = 0;
    for (std::size_t start = 0; start + 1 < col_len; start += bptt) {
        const std::size_t t_len = std::min(bptt, col_len - 1 - start);
        Tensor x({t_len, batch});
        std::vector<int> targets(t_len * batch);
        for (std::size_t t = 0; t < t_len; ++t)
            for (std::size_t b = 0; b < batch; ++b) {
                const std::size_t pos = b * col_len + start + t;
                x(t, b) = static_cast<float>(tokens[pos]);
                targets[t * batch + b] = tokens[pos + 1];
            }
        Tensor logits = model.forward(x);
        nll += static_cast<double>(
                   softmaxCrossEntropy(logits, targets)) *
               static_cast<double>(t_len * batch);
        count += t_len * batch;
    }
    model.setTraining(true);
    return std::exp(nll / static_cast<double>(count));
}

} // namespace mrq
