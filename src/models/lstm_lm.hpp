/**
 * @file
 * Two-layer LSTM language model (the paper's Wikitext-2 model,
 * scaled down): embedding -> LSTM -> dropout -> LSTM -> dropout ->
 * linear decoder, with quantized recurrent weights and signed
 * PACT-quantized hidden activations between layers.
 */

#ifndef MRQ_MODELS_LSTM_LM_HPP
#define MRQ_MODELS_LSTM_LM_HPP

#include <memory>

#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"

namespace mrq {

/** LSTM LM over [T, N] token batches producing [T*N, vocab] logits. */
class LstmLm : public Module
{
  public:
    /**
     * @param vocab   Vocabulary size.
     * @param embed   Embedding width.
     * @param hidden  LSTM hidden width.
     * @param dropout Dropout probability between layers.
     * @param rng     Initializer RNG.
     */
    LstmLm(std::size_t vocab, std::size_t embed, std::size_t hidden,
           float dropout, Rng& rng);

    /** @param x Token ids as a [T, N] float tensor. */
    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void collectParameters(std::vector<Parameter*>& out) override;
    void setTraining(bool training) override;
    void setQuantContext(QuantContext* ctx) override;
    void calibrateWeightClips() override;

    std::size_t vocab() const { return vocab_; }

  private:
    std::size_t vocab_, hidden_;
    std::unique_ptr<Embedding> embedding_;
    std::unique_ptr<Lstm> lstm1_, lstm2_;
    std::unique_ptr<PactQuant> act0_, act1_, act2_;
    std::unique_ptr<Dropout> drop1_, drop2_;
    std::unique_ptr<Linear> decoder_;

    std::size_t cachedT_ = 0, cachedN_ = 0;
};

/**
 * Perplexity of the model on a token stream, evaluated in
 * non-overlapping [T, 1] windows: exp(mean next-token NLL).
 */
double lmPerplexity(LstmLm& model, const std::vector<int>& tokens,
                    std::size_t bptt, std::size_t batch = 8);

} // namespace mrq

#endif // MRQ_MODELS_LSTM_LM_HPP
