/**
 * @file
 * CNN classifier builders — scaled-down, architecture-faithful
 * stand-ins for the paper's ImageNet models.
 *
 * buildResNetTiny  : basic residual blocks     (ResNet-18 stand-in)
 * buildResNetMid   : bottleneck residual blocks (ResNet-50 stand-in)
 * buildMobileNetTiny : inverted residual blocks (MobileNet-v2 stand-in)
 *
 * All builders return a Sequential producing [N, classes] logits from
 * [N, 3, 16, 16] inputs and wire every quantizable layer to the
 * QuantContext passed at training time via setQuantContext().
 */

#ifndef MRQ_MODELS_CLASSIFIERS_HPP
#define MRQ_MODELS_CLASSIFIERS_HPP

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "nn/sequential.hpp"

namespace mrq {

/** ResNet-18 stand-in: 3 stages of basic blocks, widths {8, 16, 32}. */
std::unique_ptr<Sequential> buildResNetTiny(Rng& rng,
                                            std::size_t classes = 10);

/** ResNet-50 stand-in: 3 stages of bottleneck blocks. */
std::unique_ptr<Sequential> buildResNetMid(Rng& rng,
                                           std::size_t classes = 10);

/** MobileNet-v2 stand-in: inverted residual stages. */
std::unique_ptr<Sequential> buildMobileNetTiny(Rng& rng,
                                               std::size_t classes = 10);

/** Construct a model by name: "resnet-tiny", "resnet-mid",
 *  "mobilenet-tiny". */
std::unique_ptr<Sequential> buildClassifier(const std::string& name,
                                            Rng& rng,
                                            std::size_t classes = 10);

} // namespace mrq

#endif // MRQ_MODELS_CLASSIFIERS_HPP
