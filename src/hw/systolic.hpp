/**
 * @file
 * Cycle-accurate weight-stationary systolic array of mMAC cells
 * (Secs. 2.5 and 5, Figs. 3 and 9-12).
 *
 * The array multiplies a lattice weight matrix by lattice data,
 * tiling rows of W onto array rows and g-long weight groups onto
 * array columns.  Results are bit-exact with term-quantized reference
 * arithmetic: Y = TQ_alpha(W) x TQ_beta(X), the same projection the
 * training-side fake quantizer applies — asserted by the equivalence
 * tests in tests/hw.
 *
 * Cycle accounting matches the analytic model in hw/perf_model.hpp
 * (also asserted by tests), which the large-network benches rely on.
 */

#ifndef MRQ_HW_SYSTOLIC_HPP
#define MRQ_HW_SYSTOLIC_HPP

#include <cstdint>
#include <vector>

#include "core/quant_config.hpp"
#include "hw/mmac.hpp"

namespace mrq {

/** Aggregate activity counters of one array run. */
struct SystolicStats
{
    std::uint64_t cycles = 0;
    std::uint64_t termPairs = 0;     ///< Pairs actually processed.
    std::uint64_t incrementOps = 0;  ///< Accumulator activity.
    std::uint64_t tiles = 0;
};

/** Weight-stationary mMAC array. */
class MmacSystolicArray
{
  public:
    /**
     * @param rows Array height (output rows per tile).
     * @param cols Array width (weight groups per tile).
     * @param cfg  TQ sub-model configuration (g, alpha, beta, bits).
     */
    MmacSystolicArray(std::size_t rows, std::size_t cols,
                      const SubModelConfig& cfg);

    /**
     * Compute Y = TQ(W) x TQ(X) over integer lattice operands.
     *
     * @param w Row-major [m, k] weight lattice values.
     * @param m,k Weight matrix shape.
     * @param x Row-major [k, n] data lattice values (TQ applied
     *          internally with budget beta per value).
     * @param n Data columns.
     * @param stats Optional activity counters.
     * @return Row-major [m, n] products.
     */
    std::vector<std::int64_t>
    matmul(const std::vector<std::int64_t>& w, std::size_t m,
           std::size_t k, const std::vector<std::int64_t>& x,
           std::size_t n, SystolicStats* stats = nullptr) const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    const SubModelConfig& config() const { return cfg_; }

  private:
    std::size_t rows_;
    std::size_t cols_;
    SubModelConfig cfg_;
};

} // namespace mrq

#endif // MRQ_HW_SYSTOLIC_HPP
