#include "hw/cost_model.hpp"

#include "common/logging.hpp"

namespace mrq {

MacResources
macResources(MacDesign design)
{
    switch (design) {
      case MacDesign::PMac:
        return MacResources{57, 44};
      case MacDesign::BMac:
        return MacResources{12, 14};
      case MacDesign::Mmac:
        return MacResources{21, 25};
    }
    panic("macResources: unknown design");
}

double
macRelativePower(MacDesign design)
{
    switch (design) {
      case MacDesign::PMac:
        return 5.8;
      case MacDesign::BMac:
        return 0.42;
      case MacDesign::Mmac:
        return 1.0;
    }
    panic("macRelativePower: unknown design");
}

std::size_t
macCyclesPerGroup(MacDesign design, std::size_t group_size,
                  std::size_t gamma)
{
    switch (design) {
      case MacDesign::PMac:
        return group_size;
      case MacDesign::BMac:
        return 16 * group_size;
      case MacDesign::Mmac:
        return gamma;
    }
    panic("macCyclesPerGroup: unknown design");
}

double
macEnergyPerGroup(MacDesign design, std::size_t group_size,
                  std::size_t gamma)
{
    return static_cast<double>(
               macCyclesPerGroup(design, group_size, gamma)) *
           macRelativePower(design);
}

double
macRelativeEfficiency(MacDesign design, std::size_t group_size,
                      std::size_t gamma)
{
    const double e_design = macEnergyPerGroup(design, group_size, gamma);
    const double e_mmac =
        macEnergyPerGroup(MacDesign::Mmac, group_size, gamma);
    // Efficiency is work per energy; same work, so the ratio inverts.
    return e_mmac / e_design;
}

double
laconicEnergyPerDotProduct()
{
    // 144 budgeted term pairs at 1.125x the mMAC per-pair energy plus
    // the 16-bucket reduction pass (one add per bucket at unit cost).
    return 144.0 * 1.125;
}

double
mmacEnergyPerDotProduct(std::size_t gamma)
{
    return static_cast<double>(gamma);
}

std::string
macDesignName(MacDesign design)
{
    switch (design) {
      case MacDesign::PMac:
        return "pMAC";
      case MacDesign::BMac:
        return "bMAC";
      case MacDesign::Mmac:
        return "mMAC";
    }
    panic("macDesignName: unknown design");
}

} // namespace mrq
