#include "hw/systolic_os.hpp"

#include "core/fake_quant.hpp"
#include "kernels/blocking.hpp"

namespace mrq {

using kernels::ceilDiv;

OsMmacSystolicArray::OsMmacSystolicArray(std::size_t rows,
                                         std::size_t cols,
                                         const SubModelConfig& cfg)
    : rows_(rows), cols_(cols), cfg_(cfg)
{
    require(rows > 0 && cols > 0, "OsMmacSystolicArray: empty array");
    require(cfg.mode == QuantMode::Tq,
            "OsMmacSystolicArray: the array runs TQ sub-models");
}

std::vector<std::int64_t>
OsMmacSystolicArray::matmul(const std::vector<std::int64_t>& w,
                            std::size_t m, std::size_t k,
                            const std::vector<std::int64_t>& x,
                            std::size_t n, SystolicStats* stats) const
{
    require(w.size() == m * k, "OsMmacSystolicArray::matmul: W size");
    require(x.size() == k * n, "OsMmacSystolicArray::matmul: X size");
    const std::size_t g = cfg_.groupSize;
    const std::size_t groups_per_row = ceilDiv(k, g);

    // Pre-quantize data terms exactly as the WS array does.
    std::vector<std::vector<Term>> data_terms(k * n);
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t j = 0; j < n; ++j) {
            auto terms = encodeTerms(x[kk * n + j], cfg_.encoding);
            if (terms.size() > cfg_.beta)
                terms.resize(cfg_.beta);
            data_terms[kk * n + j] = std::move(terms);
        }
    }

    std::vector<std::int64_t> y(m * n, 0);
    SystolicStats local;
    local.tiles = ceilDiv(m, rows_) * ceilDiv(n, cols_);
    local.cycles =
        osLayerCycles(LayerGeometry{"", m, k, n}, cfg_, rows_, cols_);

    Mmac cell(g, cfg_.alpha, cfg_.beta);
    std::vector<std::vector<Term>> slice(g);
    std::vector<std::int64_t> group_vals;
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::size_t q = 0; q < groups_per_row; ++q) {
                const std::size_t base = q * g;
                const std::size_t len = std::min(g, k - base);
                group_vals.assign(w.begin() + i * k + base,
                                  w.begin() + i * k + base + len);
                const std::size_t budget =
                    scaledGroupBudget(cfg_.alpha, g, len);
                MultiResGroup group(group_vals, budget, cfg_.encoding);
                cell.loadWeights(
                    MmacWeightQueues::fromGroup(group, budget));
                for (std::size_t s = 0; s < g; ++s) {
                    if (s < len)
                        slice[s] = data_terms[(base + s) * n + j];
                    else
                        slice[s].clear();
                }
                const MmacResult r = cell.computeGroup(slice, acc);
                acc = r.value;
                local.termPairs += r.termPairs;
                local.incrementOps += r.incrementOps;
            }
            y[i * n + j] = acc;
        }
    }
    if (stats)
        *stats = local;
    return y;
}

std::uint64_t
osLayerCycles(const LayerGeometry& layer, const SubModelConfig& cfg,
              std::size_t rows, std::size_t cols)
{
    const std::uint64_t groups_per_row =
        ceilDiv(layer.inner, cfg.groupSize);
    const std::uint64_t tiles =
        ceilDiv(layer.outputs, rows) * ceilDiv(layer.positions, cols);
    // Each tile streams every group beat through its cells once.
    const std::uint64_t per_tile =
        rows + cols + groups_per_row * cfg.gamma();
    return tiles * per_tile;
}

LayerPerf
osLayerPerformance(const LayerGeometry& layer, const SubModelConfig& cfg,
                   const SystolicArrayConfig& array,
                   const PackedTermFormat& fmt)
{
    require(cfg.mode == QuantMode::Tq,
            "osLayerPerformance: the mMAC system runs TQ sub-models");
    const std::uint64_t g = cfg.groupSize;
    const std::uint64_t m = layer.outputs;
    const std::uint64_t k = layer.inner;
    const std::uint64_t n = layer.positions;
    const std::uint64_t groups_per_row = ceilDiv(k, g);
    const std::uint64_t tile_rows = ceilDiv(m, array.rows);
    const std::uint64_t tile_cols = ceilDiv(n, array.cols);

    LayerPerf perf;
    perf.cycles = osLayerCycles(layer, cfg, array.rows, array.cols);
    perf.termPairs = m * groups_per_row * n * cfg.gamma();

    // OS traffic: weights re-streamed once per output-column tile,
    // data re-streamed once per output-row tile.
    const std::uint64_t total_groups = m * groups_per_row;
    perf.termMemEntries = tile_cols * total_groups *
                          ceilDiv(cfg.alpha, fmt.termsPerEntry());
    perf.indexMemEntries = tile_cols * total_groups *
                           ceilDiv(cfg.alpha, fmt.indexesPerEntry());
    const std::uint64_t data_bits =
        tile_rows * k * n * cfg.beta * fmt.termBits();
    perf.dataMemEntries = ceilDiv(data_bits, fmt.entryBits);
    return perf;
}

} // namespace mrq
