#include "hw/system.hpp"

#include <algorithm>

#include "core/uniform_quant.hpp"
#include "nn/activations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

namespace mrq {

HwInferenceEngine::HwInferenceEngine(Sequential& model,
                                     const SubModelConfig& cfg,
                                     const SystolicArrayConfig& array,
                                     const PackedTermFormat& fmt)
    : model_(model), cfg_(cfg), arrayCfg_(array), fmt_(fmt),
      array_(array.rows, array.cols, cfg)
{
    require(cfg.mode == QuantMode::Tq,
            "HwInferenceEngine: deployment requires a TQ sub-model");
}

void
HwInferenceEngine::attachImage(const DeploymentImage& image)
{
    require(image.bits() == cfg_.bits,
            "HwInferenceEngine::attachImage: lattice bitwidth mismatch");
    require(image.groupSize() == cfg_.groupSize,
            "HwInferenceEngine::attachImage: group size mismatch");
    bool has_alpha = false;
    for (std::size_t rung : image.ladder())
        has_alpha = has_alpha || rung == cfg_.alpha;
    require(has_alpha, "HwInferenceEngine::attachImage: image ladder "
                       "does not contain alpha ",
            cfg_.alpha);
    image_ = &image;
}

std::vector<std::int64_t>
HwInferenceEngine::arrayMatmul(const std::vector<std::int64_t>& w,
                               std::size_t m, std::size_t k,
                               const std::vector<std::int64_t>& x,
                               std::size_t n, const std::string& layer_name)
{
    MRQ_TRACE_SPAN("hw.array_matmul");
    SystolicStats stats;
    std::vector<std::int64_t> y = array_.matmul(w, m, k, x, n, &stats);
    report_.systolic.cycles += stats.cycles;
    report_.systolic.termPairs += stats.termPairs;
    report_.systolic.incrementOps += stats.incrementOps;
    report_.systolic.tiles += stats.tiles;
    // Cumulative simulated cycles as a timeline counter track.
    // arrayMatmul runs on the caller thread outside parallel regions,
    // so sampling here is serial-safe.
    if (obs::traceExportEnabled())
        obs::traceCounterSample(
            "hw.cycles", static_cast<double>(report_.systolic.cycles));

    // Per-layer deployment accounting.  Budgeted slots reserve gamma
    // term pairs per group beat; pairs the straggler-free budget left
    // unused are idle slots (Sec. 7.4's straggler headroom).  SDR
    // encoder throughput is one encode per streamed data value.
    // arrayMatmul runs on the caller thread and the values are exact
    // integers from the simulator, so the counters are deterministic.
    if (obs::metricsEnabled()) {
        const std::uint64_t groups_per_row =
            (k + cfg_.groupSize - 1) / cfg_.groupSize;
        const std::uint64_t budgeted = static_cast<std::uint64_t>(m) *
                                       groups_per_row * n *
                                       cfg_.gamma();
        obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
        const std::string base = "hw.layer." + layer_name;
        reg.addCounterNamed(base + ".cycles",
                            static_cast<std::int64_t>(stats.cycles));
        reg.addCounterNamed(base + ".term_pairs",
                            static_cast<std::int64_t>(stats.termPairs));
        reg.addCounterNamed(
            base + ".idle_term_slots",
            static_cast<std::int64_t>(
                budgeted > stats.termPairs ? budgeted - stats.termPairs
                                           : 0));
        reg.addCounterNamed(base + ".encoded_values",
                            static_cast<std::int64_t>(k * n));
    }

    LayerGeometry geom{layer_name, m, k, n};
    const LayerPerf perf =
        layerPerformance(geom, cfg_, arrayCfg_, fmt_);
    report_.termMemEntries += perf.termMemEntries;
    report_.indexMemEntries += perf.indexMemEntries;
    report_.dataMemEntries += perf.dataMemEntries;

    // Record each distinct layer's geometry once (layers repeat per
    // image within a batch).
    bool seen = false;
    for (const LayerGeometry& g : geometries_)
        seen = seen || (g.name == layer_name && g.outputs == m &&
                        g.inner == k && g.positions == n);
    if (!seen)
        geometries_.push_back(geom);
    return y;
}

bool
HwInferenceEngine::fetchImageWeights(const std::string& name,
                                     std::vector<std::int64_t>* w_int,
                                     float* scale) const
{
    if (image_ == nullptr)
        return false;
    for (std::size_t l = 0; l < image_->layers().size(); ++l) {
        const LayerImage& layer = image_->layers()[l];
        if (layer.name != name)
            continue;
        *w_int = image_->layerWeights(l, cfg_.alpha);
        *scale = layer.scale;
        return true;
    }
    fatal("HwInferenceEngine: layer '", name,
          "' missing from the attached deployment image");
}

Tensor
HwInferenceEngine::runConv(Conv2d& conv, const Tensor& x, float data_clip,
                           const std::string& name)
{
    const std::size_t n = x.dim(0);
    const std::size_t oh =
        convOutSize(x.dim(2), conv.kernel(), conv.stride(), conv.pad());
    const std::size_t ow =
        convOutSize(x.dim(3), conv.kernel(), conv.stride(), conv.pad());
    const std::size_t m = conv.outChannels();
    const std::size_t k =
        conv.inChannels() * conv.kernel() * conv.kernel();

    // Weight lattice values: read from the packed deployment image
    // when attached (the device flow), otherwise quantize the master
    // weights (the simulation shortcut).
    UniformQuantizer wq;
    wq.bits = cfg_.bits;
    wq.clip = conv.quantizer().clip();
    wq.isSigned = true;
    float w_scale = wq.scale();
    std::vector<std::int64_t> w_int;
    if (!fetchImageWeights(name, &w_int, &w_scale)) {
        const Tensor& w = conv.weight().value;
        w_int.resize(w.size());
        for (std::size_t i = 0; i < w.size(); ++i)
            w_int[i] = wq.quantize(w[i]);
    }

    // Data lattice projection (SDR encoder inputs).
    UniformQuantizer xq;
    xq.bits = cfg_.bits;
    xq.clip = data_clip;
    xq.isSigned = false;
    Tensor cols = im2col(x, conv.kernel(), conv.stride(), conv.pad());

    Tensor y({n, m, oh, ow});
    const std::size_t positions = oh * ow;
    std::vector<std::int64_t> x_int(k * positions);
    const float out_scale = w_scale * xq.scale();
    for (std::size_t img = 0; img < n; ++img) {
        for (std::size_t r = 0; r < k; ++r)
            for (std::size_t c = 0; c < positions; ++c)
                x_int[r * positions + c] =
                    xq.quantize(cols(img, r, c));
        const std::vector<std::int64_t> prod =
            arrayMatmul(w_int, m, k, x_int, positions, name);
        for (std::size_t i = 0; i < m * positions; ++i)
            y[img * m * positions + i] =
                static_cast<float>(prod[i]) * out_scale;
    }
    return y;
}

Tensor
HwInferenceEngine::runLinear(Linear& lin, const Tensor& x,
                             float data_clip, const std::string& name)
{
    const std::size_t n = x.dim(0);
    const std::size_t k = lin.inFeatures();
    const std::size_t m = lin.outFeatures();

    UniformQuantizer wq;
    wq.bits = cfg_.bits;
    wq.clip = lin.quantizer().clip();
    wq.isSigned = true;
    float w_scale = wq.scale();
    std::vector<std::int64_t> w_int;
    if (!fetchImageWeights(name, &w_int, &w_scale)) {
        const Tensor& w = lin.weight().value;
        w_int.resize(w.size());
        for (std::size_t i = 0; i < w.size(); ++i)
            w_int[i] = wq.quantize(w[i]);
    }

    UniformQuantizer xq;
    xq.bits = cfg_.bits;
    xq.clip = data_clip;
    xq.isSigned = false;

    // X as [k, n] columns.
    std::vector<std::int64_t> x_int(k * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < k; ++j)
            x_int[j * n + i] = xq.quantize(x(i, j));

    const std::vector<std::int64_t> prod =
        arrayMatmul(w_int, m, k, x_int, n, name);
    const float out_scale = w_scale * xq.scale();
    Tensor y({n, m});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j) {
            float v = static_cast<float>(prod[j * n + i]) * out_scale;
            if (lin.bias().value.size() == m)
                v += lin.bias().value[j];
            y(i, j) = v;
        }
    return y;
}

Tensor
HwInferenceEngine::forward(const Tensor& x)
{
    // Attach the engine's own quantization context so PactQuant
    // layers emit the dequantized lattice stream (SDR encoder + term
    // quantizer output) the array consumes; the matmuls themselves go
    // through the integer systolic path instead of the layers.
    QuantContext ctx;
    ctx.config = cfg_;
    model_.setQuantContext(&ctx);
    model_.setTraining(false);

    Tensor cur = x;
    float data_clip = 1.0f; // images arrive in [0, 1]
    for (std::size_t i = 0; i < model_.size(); ++i) {
        Module* layer = model_.child(i);
        if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
            cur = runConv(*conv, cur, data_clip,
                          "conv@" + std::to_string(i));
        } else if (auto* lin = dynamic_cast<Linear*>(layer)) {
            cur = runLinear(*lin, cur, data_clip,
                            "linear@" + std::to_string(i));
        } else if (auto* pact = dynamic_cast<PactQuant*>(layer)) {
            cur = pact->forward(cur);
            data_clip = pact->clip();
        } else {
            // BN, pooling, ReLU, dropout(eval): plain float forward.
            cur = layer->forward(cur);
        }
    }

    model_.setTraining(true);
    model_.setQuantContext(nullptr);
    return cur;
}

HwReport
HwInferenceEngine::report() const
{
    HwReport out = report_;
    out.latencyMs = static_cast<double>(out.systolic.cycles) /
                    (arrayCfg_.clockMhz * 1e6) * 1e3;
    const double kilo_cells =
        static_cast<double>(arrayCfg_.rows * arrayCfg_.cols) / 1000.0;
    const double mem_entries =
        static_cast<double>(out.termMemEntries + out.indexMemEntries +
                            out.dataMemEntries);
    out.energyPj =
        static_cast<double>(out.systolic.termPairs) * energy_.perTermPair +
        mem_entries * energy_.perMemoryEntry +
        static_cast<double>(out.systolic.cycles) *
            energy_.staticPerCyclePerKiloCell * kilo_cells;
    return out;
}

void
HwInferenceEngine::resetReport()
{
    report_ = HwReport{};
}

} // namespace mrq
