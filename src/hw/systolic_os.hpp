/**
 * @file
 * Output-stationary mMAC array variant.
 *
 * Sec. 5 notes the multi-resolution paradigm "can also support other
 * computation engine designs".  This module provides one: an
 * output-stationary (OS) array where each cell owns one output
 * element and both weight terms and data terms stream through.  The
 * functional result is identical to the weight-stationary (WS) array
 * (same TQ projection); what changes is the schedule and the memory
 * traffic pattern — OS re-streams *weights* once per output-column
 * tile, where WS re-streams *data* once per output-row tile.  The
 * dataflow ablation bench quantifies when each wins.
 */

#ifndef MRQ_HW_SYSTOLIC_OS_HPP
#define MRQ_HW_SYSTOLIC_OS_HPP

#include "hw/perf_model.hpp"
#include "hw/systolic.hpp"

namespace mrq {

/** Output-stationary counterpart of MmacSystolicArray. */
class OsMmacSystolicArray
{
  public:
    OsMmacSystolicArray(std::size_t rows, std::size_t cols,
                        const SubModelConfig& cfg);

    /** Same contract as MmacSystolicArray::matmul. */
    std::vector<std::int64_t>
    matmul(const std::vector<std::int64_t>& w, std::size_t m,
           std::size_t k, const std::vector<std::int64_t>& x,
           std::size_t n, SystolicStats* stats = nullptr) const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

  private:
    std::size_t rows_;
    std::size_t cols_;
    SubModelConfig cfg_;
};

/**
 * Output-stationary cycle count for one layer: each tile of R x C
 * outputs streams ceil(K/g) group beats of gamma cycles plus pipeline
 * fill; idle-cell replication does not apply (every cell owns a
 * distinct output).
 */
std::uint64_t osLayerCycles(const LayerGeometry& layer,
                            const SubModelConfig& cfg, std::size_t rows,
                            std::size_t cols);

/**
 * Output-stationary performance estimate, with the OS traffic
 * pattern: weights re-read once per output-column tile, data re-read
 * once per output-row tile.
 */
LayerPerf osLayerPerformance(const LayerGeometry& layer,
                             const SubModelConfig& cfg,
                             const SystolicArrayConfig& array,
                             const PackedTermFormat& fmt);

} // namespace mrq

#endif // MRQ_HW_SYSTOLIC_OS_HPP
