#include "hw/controller.hpp"

#include <algorithm>

namespace mrq {

ResolutionController::ResolutionController(
    const SubModelLadder& ladder, const std::vector<double>& qualities,
    const std::vector<LayerGeometry>& layers,
    const SystolicArrayConfig& array, const SystemEnergyModel& energy)
{
    require(ladder.size() == qualities.size(),
            "ResolutionController: ladder/quality size mismatch");
    require(!ladder.empty(), "ResolutionController: empty ladder");

    const PackedTermFormat fmt;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        OperatingPoint point;
        point.config = ladder[i];
        point.quality = qualities[i];
        const NetworkPerf perf =
            networkPerformance(layers, ladder[i], array, fmt, energy);
        point.latencyMs = perf.latencyMs;
        point.energyPj = perf.energyUnits;
        points_.push_back(point);
    }
    std::sort(points_.begin(), points_.end(),
              [](const OperatingPoint& a, const OperatingPoint& b) {
                  return a.config.gamma() < b.config.gamma();
              });
}

std::optional<OperatingPoint>
ResolutionController::select(const ResourceBudget& budget) const
{
    const OperatingPoint* best = nullptr;
    for (const OperatingPoint& p : points_) {
        if (budget.maxLatencyMs > 0.0 && p.latencyMs > budget.maxLatencyMs)
            continue;
        if (budget.maxEnergyPj > 0.0 && p.energyPj > budget.maxEnergyPj)
            continue;
        if (best == nullptr || p.quality > best->quality ||
            (p.quality == best->quality && p.energyPj < best->energyPj)) {
            best = &p;
        }
    }
    if (best == nullptr)
        return std::nullopt;
    return *best;
}

std::vector<OperatingPoint>
ResolutionController::paretoFrontier() const
{
    // Points ascend in gamma and therefore in latency; keep those that
    // strictly improve quality over everything cheaper.
    std::vector<OperatingPoint> frontier;
    double best_quality = -1e300;
    for (const OperatingPoint& p : points_) {
        if (p.quality > best_quality) {
            frontier.push_back(p);
            best_quality = p.quality;
        }
    }
    return frontier;
}

} // namespace mrq
