/**
 * @file
 * Streaming term-quantizer unit (Sec. 5.3, Fig. 15).
 *
 * Receives one term per cycle (largest magnitude first, as produced
 * by the SDR encoder's output path), counts observed terms, and zeroes
 * every term past the data budget beta.
 */

#ifndef MRQ_HW_TERM_QUANTIZER_HPP
#define MRQ_HW_TERM_QUANTIZER_HPP

#include <optional>
#include <vector>

#include "core/term.hpp"

namespace mrq {

/** Cycle-stepped top-beta term selector. */
class TermQuantizerUnit
{
  public:
    explicit TermQuantizerUnit(std::size_t beta) : beta_(beta) {}

    /** Reset for a new value. */
    void
    reset()
    {
        seen_ = 0;
        cycles_ = 0;
    }

    /**
     * Feed one term (one cycle).
     * @return The term if within budget, nullopt if zeroed.
     */
    std::optional<Term>
    step(const Term& term)
    {
        ++cycles_;
        if (seen_ < beta_) {
            ++seen_;
            return term;
        }
        return std::nullopt;
    }

    std::size_t cycles() const { return cycles_; }

  private:
    std::size_t beta_;
    std::size_t seen_ = 0;
    std::size_t cycles_ = 0;
};

/** Pass a term stream through the unit; returns the kept terms. */
inline std::vector<Term>
termQuantizeStream(const std::vector<Term>& terms, std::size_t beta,
                   std::size_t* cycles = nullptr)
{
    TermQuantizerUnit unit(beta);
    unit.reset();
    std::vector<Term> kept;
    for (const Term& t : terms)
        if (auto out = unit.step(t))
            kept.push_back(*out);
    if (cycles)
        *cycles = unit.cycles();
    return kept;
}

} // namespace mrq

#endif // MRQ_HW_TERM_QUANTIZER_HPP
