/**
 * @file
 * Multi-resolution multiplier-accumulator cell (Sec. 5.2, Figs. 11-13).
 *
 * The mMAC multiplies by adding exponents: each cycle it pops one
 * weight term (exponent, sign, group index), selects the indexed data
 * value's current term, adds the exponents, and accumulates the
 * resulting signed power of two.  The term accumulator keeps separate
 * positive and negative running sums updated with a shift +
 * half-adder incrementer (Fig. 13); a single subtraction at the end
 * of a systolic row produces the final value.
 *
 * The model is cycle-accurate at term-pair granularity and counts the
 * half-adder increment activity the Fig. 13 design implies.
 */

#ifndef MRQ_HW_MMAC_HPP
#define MRQ_HW_MMAC_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "core/multires_group.hpp"
#include "core/term.hpp"

namespace mrq {

/** Weight-side queues of an mMAC cell (loaded before compute). */
struct MmacWeightQueues
{
    /** Per kept weight term: exponent, sign, and owning group index. */
    std::vector<std::int8_t> exponents;
    std::vector<std::int8_t> signs;
    std::vector<std::uint8_t> indexes;

    /** Build the queues from a multi-resolution group at budget alpha. */
    static MmacWeightQueues fromGroup(const MultiResGroup& group,
                                      std::size_t alpha);

    std::size_t size() const { return exponents.size(); }
};

/** Split accumulator with shift + half-adder increment cost model. */
class TermAccumulator
{
  public:
    void
    reset(std::int64_t carry_in = 0)
    {
        pos_ = carry_in >= 0 ? carry_in : 0;
        neg_ = carry_in < 0 ? -carry_in : 0;
        incrementOps_ = 0;
        rippleBits_ = 0;
    }

    /** Add a signed power of two (one cycle of Fig. 13 activity). */
    void
    add(int exponent, int sign)
    {
        invariant(exponent >= 0, "TermAccumulator: negative exponent");
        const std::int64_t mag = std::int64_t{1} << exponent;
        std::int64_t& acc = sign >= 0 ? pos_ : neg_;
        // Fig. 13: shift the accumulator right by `exponent`, add 1
        // with the half-adder incrementer, shift back.  The carry
        // ripples through the trailing run of ones above the target
        // bit; we count those half-adder activations.
        const std::uint64_t shifted =
            static_cast<std::uint64_t>(acc) >> exponent;
        rippleBits_ += 1 + static_cast<std::size_t>(
                               std::countr_one(shifted));
        acc += mag;
        ++incrementOps_;
    }

    /** Final subtraction between the positive and negative sums. */
    std::int64_t value() const { return pos_ - neg_; }

    /** Increment operations (one per accumulated term). */
    std::size_t incrementOps() const { return incrementOps_; }

    /** Total half-adder activations across all increments. */
    std::size_t rippleBits() const { return rippleBits_; }

  private:
    std::int64_t pos_ = 0;
    std::int64_t neg_ = 0;
    std::size_t incrementOps_ = 0;
    std::size_t rippleBits_ = 0;
};

/** Result of one mMAC group computation. */
struct MmacResult
{
    std::int64_t value = 0;       ///< y_out = dot(group) + y_in.
    std::size_t cycles = 0;       ///< Budgeted cycles (gamma).
    std::size_t termPairs = 0;    ///< Term pairs actually processed.
    std::size_t incrementOps = 0; ///< Accumulator increment activity.
    std::size_t rippleBits = 0;   ///< Half-adder activations (Fig. 13).
};

/** Borrowed view of one data value's kept terms (flat encoding). */
struct TermSpan
{
    const std::int8_t* exponents = nullptr;
    const std::int8_t* signs = nullptr;
    std::size_t count = 0;
};

/** One mMAC systolic cell. */
class Mmac
{
  public:
    /**
     * @param group_size Group size g (multiplexer width).
     * @param alpha      Weight term budget the queues are sized for.
     * @param beta       Data term budget per value.
     */
    Mmac(std::size_t group_size, std::size_t alpha, std::size_t beta);

    /** Load a group's weight queues (memory -> cell). */
    void loadWeights(const MmacWeightQueues& queues);

    /**
     * Compute y_out = sum_i w_i * x_i + y_in for one data group.
     *
     * @param data_terms Per group member, its kept data terms
     *                   (at most beta each).
     * @param y_in       Accumulation input from the neighboring cell.
     */
    MmacResult computeGroup(
        const std::vector<std::vector<Term>>& data_terms,
        std::int64_t y_in) const;

    /**
     * Fast path over flat term spans (one per group member).  Bit- and
     * counter-identical to computeGroup for `value`, `termPairs`,
     * `incrementOps`, and `cycles`; the Fig. 13 ripple activity is not
     * modeled here (`rippleBits` is reported as 0) because the batched
     * accumulation kernel has no per-increment carry chain.
     */
    MmacResult computeGroupFlat(const TermSpan* data_terms,
                                std::int64_t y_in) const;

    std::size_t groupSize() const { return groupSize_; }
    std::size_t alpha() const { return alpha_; }
    std::size_t beta() const { return beta_; }

    /** Term-pair budget gamma = alpha * beta (the latency bound). */
    std::size_t gamma() const { return alpha_ * beta_; }

  private:
    std::size_t groupSize_;
    std::size_t alpha_;
    std::size_t beta_;
    MmacWeightQueues weights_;
};

} // namespace mrq

#endif // MRQ_HW_MMAC_HPP
