/**
 * @file
 * Streaming SDR encoder (Sec. 5.3, Fig. 14).
 *
 * Hardware FSM that converts an unsigned binary input, presented one
 * bit per cycle LSB-first, into canonical signed digits {-1, 0, +1}.
 * The recoding is the classic carry form: with carry c_i and input
 * bits b_i, b_{i+1}:
 *   c_{i+1} = floor((b_i + b_{i+1} + c_i) / 2)
 *   d_i     = b_i + c_i - 2 * c_{i+1}
 * which yields the non-adjacent form — the minimum-term SDR the rest
 * of the system assumes.
 */

#ifndef MRQ_HW_SDR_ENCODER_HPP
#define MRQ_HW_SDR_ENCODER_HPP

#include <cstdint>
#include <vector>

#include "core/term.hpp"

namespace mrq {

/** Cycle-stepped FSM producing one signed digit per input bit. */
class SdrEncoderFsm
{
  public:
    /** Reset to the idle state (zero carry). */
    void
    reset()
    {
        carry_ = 0;
        cycles_ = 0;
    }

    /**
     * Feed one cycle: current bit and a one-bit lookahead.
     *
     * @param bit      b_i (0/1).
     * @param next_bit b_{i+1} (0/1); pass 0 past the MSB.
     * @return The signed digit d_i in {-1, 0, +1}.
     */
    int
    step(int bit, int next_bit)
    {
        const int next_carry = (bit + next_bit + carry_) >> 1;
        const int d = bit + carry_ - 2 * next_carry;
        carry_ = next_carry;
        ++cycles_;
        return d;
    }

    /** Cycles consumed since the last reset (one per bit). */
    std::size_t cycles() const { return cycles_; }

  private:
    int carry_ = 0;
    std::size_t cycles_ = 0;
};

/**
 * Encode a full unsigned value through the FSM.
 *
 * @param value Non-negative input.
 * @param bits  Input bitwidth (cycles consumed = bits + 1).
 * @return Signed digits as terms, largest exponent first.
 */
std::vector<Term> sdrEncodeStreaming(std::uint64_t value, unsigned bits,
                                     std::size_t* cycles = nullptr);

} // namespace mrq

#endif // MRQ_HW_SDR_ENCODER_HPP
