#include "hw/sdr_encoder.hpp"

#include <algorithm>

namespace mrq {

std::vector<Term>
sdrEncodeStreaming(std::uint64_t value, unsigned bits, std::size_t* cycles)
{
    SdrEncoderFsm fsm;
    fsm.reset();
    std::vector<Term> terms;
    // One extra cycle flushes the final carry into digit position
    // `bits` (e.g. 31 -> +2^5 - 2^0 on a 5-bit input).
    for (unsigned i = 0; i <= bits; ++i) {
        const int bit = static_cast<int>((value >> i) & 1u);
        const int next_bit =
            i + 1 <= bits ? static_cast<int>((value >> (i + 1)) & 1u) : 0;
        const int d = fsm.step(bit, next_bit);
        if (d != 0) {
            terms.push_back(Term{static_cast<std::int8_t>(i),
                                 static_cast<std::int8_t>(d)});
        }
    }
    if (cycles)
        *cycles = fsm.cycles();
    std::reverse(terms.begin(), terms.end());
    return terms;
}

} // namespace mrq
