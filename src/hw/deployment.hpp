/**
 * @file
 * Multi-resolution deployment images (Sec. 5.4 end to end).
 *
 * A DeploymentImage is what actually ships to an mMAC device: every
 * conv/linear layer's weights, packed once at the highest resolution
 * as increment-ordered term and index memories (Figs. 16-17), plus
 * the per-layer dequantization scale and the supported budget ladder.
 * Any sub-model's lattice weights reconstruct from a prefix of the
 * packed terms — no retraining, no repacking, no second copy.
 *
 * The image round-trips through a binary file, and reconstruction is
 * bit-identical to the training-side fake-quantizer's lattice
 * projection (asserted in tests/hw/test_deployment.cpp).
 */

#ifndef MRQ_HW_DEPLOYMENT_HPP
#define MRQ_HW_DEPLOYMENT_HPP

#include <string>
#include <vector>

#include "core/packed_storage.hpp"
#include "core/quant_config.hpp"
#include "nn/sequential.hpp"

namespace mrq {

/** One layer's packed weight memories. */
struct LayerImage
{
    std::string name;
    std::size_t rows = 0;    ///< Output rows (M).
    std::size_t rowLen = 0;  ///< Dot-product length (K).
    float scale = 0.0f;      ///< Lattice step (clip / qmax).

    /** Packed groups, row-major: rows x ceil(rowLen / g). */
    std::vector<PackedGroup> groups;
};

/** A packed, ladder-aware weight image of a whole model. */
class DeploymentImage
{
  public:
    /**
     * Pack a trained plain-Sequential model.
     *
     * @param model  Model whose Conv2d/Linear layers are packed.
     * @param bits   Lattice magnitude bitwidth b.
     * @param group_size Group size g.
     * @param ladder Ascending weight term budgets to support (full
     *               groups; tail groups get proportionally scaled
     *               rungs).
     * @param fmt    Packed field widths.
     */
    static DeploymentImage build(Sequential& model, int bits,
                                 std::size_t group_size,
                                 std::vector<std::size_t> ladder,
                                 const PackedTermFormat& fmt = {});

    const std::vector<LayerImage>& layers() const { return layers_; }
    const std::vector<std::size_t>& ladder() const { return ladder_; }
    std::size_t groupSize() const { return groupSize_; }
    int bits() const { return bits_; }

    /**
     * Reconstruct a layer's lattice weights (row-major [rows, rowLen])
     * at weight budget @p alpha.
     */
    std::vector<std::int64_t> layerWeights(std::size_t layer,
                                           std::size_t alpha) const;

    /** Total packed storage in bits (terms + indexes, all layers). */
    std::size_t storageBits() const;

    /** Term+index memory entries read to deploy at budget @p alpha. */
    std::size_t memoryEntriesFor(std::size_t alpha) const;

    /** Serialize to / from a binary image file. */
    void save(const std::string& path) const;
    static DeploymentImage load(const std::string& path,
                                const PackedTermFormat& fmt = {});

  private:
    int bits_ = 5;
    std::size_t groupSize_ = 16;
    std::vector<std::size_t> ladder_;
    PackedTermFormat fmt_;
    std::vector<LayerImage> layers_;
};

} // namespace mrq

#endif // MRQ_HW_DEPLOYMENT_HPP
