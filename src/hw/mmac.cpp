#include "hw/mmac.hpp"

#include "kernels/kernels.hpp"
#include "kernels/roofline.hpp"

namespace mrq {

MmacWeightQueues
MmacWeightQueues::fromGroup(const MultiResGroup& group, std::size_t alpha)
{
    MmacWeightQueues q;
    const std::size_t n = std::min(alpha, group.termCount());
    q.exponents.reserve(n);
    q.signs.reserve(n);
    q.indexes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const GroupTerm& gt = group.terms()[i];
        q.exponents.push_back(gt.term.exponent);
        q.signs.push_back(gt.term.sign);
        q.indexes.push_back(static_cast<std::uint8_t>(gt.valueIndex));
    }
    return q;
}

Mmac::Mmac(std::size_t group_size, std::size_t alpha, std::size_t beta)
    : groupSize_(group_size), alpha_(alpha), beta_(beta)
{
    require(group_size > 0, "Mmac: group size must be positive");
    require(beta > 0, "Mmac: data term budget must be positive");
}

void
Mmac::loadWeights(const MmacWeightQueues& queues)
{
    require(queues.size() <= alpha_, "Mmac::loadWeights: queue of ",
            queues.size(), " terms exceeds alpha ", alpha_);
    for (std::uint8_t idx : queues.indexes)
        require(idx < groupSize_,
                "Mmac::loadWeights: weight index out of group range");
    weights_ = queues;
}

MmacResult
Mmac::computeGroup(const std::vector<std::vector<Term>>& data_terms,
                   std::int64_t y_in) const
{
    require(data_terms.size() == groupSize_,
            "Mmac::computeGroup: expected ", groupSize_,
            " data values, got ", data_terms.size());
    for (const auto& terms : data_terms)
        require(terms.size() <= beta_,
                "Mmac::computeGroup: data value exceeds beta ", beta_);

    MmacResult result;
    TermAccumulator acc;
    acc.reset(y_in);

    // One cycle per (weight term, data term) pair: the weight exponent
    // queue replays each weight term once per data term of its indexed
    // value (the LFSR-based queue of Sec. 5.2).
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        const std::uint8_t idx = weights_.indexes[i];
        for (const Term& d : data_terms[idx]) {
            const int exponent = weights_.exponents[i] + d.exponent;
            const int sign = weights_.signs[i] * d.sign;
            acc.add(exponent, sign);
            ++result.termPairs;
        }
    }

    result.value = acc.value();
    result.incrementOps = acc.incrementOps();
    result.rippleBits = acc.rippleBits();
    // The cell is scheduled for its full term-pair budget: the systolic
    // beat is gamma cycles regardless of how many pairs were nonzero
    // (Sec. 5.1: latency directly proportional to gamma).
    result.cycles = gamma();
    return result;
}

MmacResult
Mmac::computeGroupFlat(const TermSpan* data_terms, std::int64_t y_in) const
{
    // Expand the (weight term, data term) pairs into flat exponent and
    // sign arrays, then hand the whole batch to the SIMD accumulate
    // kernel.  The split pos/neg accumulator of computeGroup satisfies
    // value == y_in + sum of signed magnitudes, which is exactly what
    // the kernel computes, and it issues one increment per pair, so
    // incrementOps == termPairs.
    thread_local std::vector<std::int16_t> exps;
    thread_local std::vector<std::int8_t> signs;
    exps.clear();
    signs.clear();

    for (std::size_t i = 0; i < weights_.size(); ++i) {
        const std::uint8_t idx = weights_.indexes[i];
        invariant(idx < groupSize_,
                  "Mmac::computeGroupFlat: weight index out of range");
        const TermSpan& span = data_terms[idx];
        invariant(span.count <= beta_,
                  "Mmac::computeGroupFlat: data value exceeds beta");
        for (std::size_t t = 0; t < span.count; ++t) {
            exps.push_back(static_cast<std::int16_t>(
                weights_.exponents[i] + span.exponents[t]));
            signs.push_back(static_cast<std::int8_t>(
                weights_.signs[i] * span.signs[t]));
        }
    }

    MmacResult result;
    result.value = kernels::kernels().termPairAccumulate(
        exps.data(), signs.data(), exps.size(), y_in);
    kernels::recordKernelElems(kernels::KernelId::TermPairs,
                               static_cast<std::int64_t>(exps.size()));
    result.termPairs = exps.size();
    result.incrementOps = exps.size();
    result.rippleBits = 0;
    result.cycles = gamma();
    return result;
}

} // namespace mrq
