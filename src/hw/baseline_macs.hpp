/**
 * @file
 * Conventional MAC baselines (Sec. 7.1, Fig. 25): the bit-parallel
 * pMAC (one value multiply-accumulate per cycle) and the bit-serial
 * bMAC (16 cycles per value pair).  Both are evaluated on the same
 * computation as the mMAC: y_out = sum_{i=1..g} x_i * w_i + y_in with
 * 5-bit operands and 16-bit accumulation.
 */

#ifndef MRQ_HW_BASELINE_MACS_HPP
#define MRQ_HW_BASELINE_MACS_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace mrq {

/** Result of a baseline MAC group computation. */
struct BaselineMacResult
{
    std::int64_t value = 0;
    std::size_t cycles = 0;
};

/** Bit-parallel MAC: one multiply-accumulate per cycle. */
class PMac
{
  public:
    /**
     * @param weights g weight values.
     * @param data    g data values.
     * @param y_in    Accumulation input.
     */
    BaselineMacResult
    computeGroup(const std::vector<std::int64_t>& weights,
                 const std::vector<std::int64_t>& data,
                 std::int64_t y_in) const
    {
        require(weights.size() == data.size(),
                "PMac: operand count mismatch");
        BaselineMacResult r;
        r.value = y_in;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            r.value += weights[i] * data[i];
            ++r.cycles;
        }
        return r;
    }
};

/** Bit-serial MAC: `bits` cycles per value pair (default 16). */
class BMac
{
  public:
    explicit BMac(std::size_t bits_per_pair = 16)
        : bitsPerPair_(bits_per_pair)
    {
    }

    BaselineMacResult
    computeGroup(const std::vector<std::int64_t>& weights,
                 const std::vector<std::int64_t>& data,
                 std::int64_t y_in) const
    {
        require(weights.size() == data.size(),
                "BMac: operand count mismatch");
        BaselineMacResult r;
        r.value = y_in;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            // Bit-serial multiply: shift-and-add over the data bits,
            // one bit per cycle, then negate if the weight is negative
            // (Fig. 25's negation stage).
            const std::int64_t w = weights[i];
            std::uint64_t mag =
                data[i] < 0 ? static_cast<std::uint64_t>(-data[i])
                            : static_cast<std::uint64_t>(data[i]);
            std::int64_t product = 0;
            for (std::size_t bit = 0; bit < bitsPerPair_; ++bit) {
                if (mag & 1u)
                    product += w << bit;
                mag >>= 1;
                ++r.cycles;
            }
            r.value += data[i] < 0 ? -product : product;
        }
        return r;
    }

    std::size_t bitsPerPair() const { return bitsPerPair_; }

  private:
    std::size_t bitsPerPair_;
};

} // namespace mrq

#endif // MRQ_HW_BASELINE_MACS_HPP
