#include "hw/perf_model.hpp"

#include <cmath>

#include "kernels/blocking.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace mrq {

using kernels::ceilDiv;

std::uint64_t
layerCycles(const LayerGeometry& layer, const SubModelConfig& cfg,
            std::size_t rows, std::size_t cols)
{
    const std::uint64_t g = cfg.groupSize;
    const std::uint64_t gamma = cfg.gamma();
    const std::uint64_t m = layer.outputs;
    const std::uint64_t k = layer.inner;
    const std::uint64_t n = layer.positions;

    const std::uint64_t groups_per_row = ceilDiv(k, g);
    const std::uint64_t tile_rows = ceilDiv(m, rows);
    const std::uint64_t tile_cols = ceilDiv(groups_per_row, cols);
    const std::uint64_t tiles = tile_rows * tile_cols;

    // Replication: a layer smaller than the array in a dimension
    // leaves idle cells; copies of the weights there process extra
    // input positions in parallel.
    std::uint64_t rep = 1;
    if (tile_rows == 1)
        rep *= std::max<std::uint64_t>(1, rows / std::max<std::uint64_t>(
                                                    1, m));
    if (tile_cols == 1)
        rep *= std::max<std::uint64_t>(
            1, cols / std::max<std::uint64_t>(1, groups_per_row));
    const std::uint64_t beats = ceilDiv(n, rep);

    // Each tile: load weight queues (alpha beats), fill the pipeline
    // (rows + cols), then one gamma-cycle beat per position batch.
    const std::uint64_t per_tile =
        cfg.alpha + rows + cols + beats * gamma;
    return tiles * per_tile;
}

LayerPerf
layerPerformance(const LayerGeometry& layer, const SubModelConfig& cfg,
                 const SystolicArrayConfig& array,
                 const PackedTermFormat& fmt)
{
    require(cfg.mode == QuantMode::Tq,
            "layerPerformance: the mMAC system runs TQ sub-models");
    const std::uint64_t g = cfg.groupSize;
    const std::uint64_t gamma = cfg.gamma();
    const std::uint64_t m = layer.outputs;
    const std::uint64_t k = layer.inner;
    const std::uint64_t n = layer.positions;

    LayerPerf perf;
    const std::uint64_t groups_per_row = ceilDiv(k, g);
    const std::uint64_t tile_rows = ceilDiv(m, array.rows);

    perf.cycles = layerCycles(layer, cfg, array.rows, array.cols);

    // Budgeted term pairs: every group beat reserves gamma slots.
    perf.termPairs = m * groups_per_row * n * gamma;

    // Weight term/index memory: each group's leading alpha terms are
    // read once (weight-stationary reuse within the tile).
    const std::uint64_t total_groups = m * groups_per_row;
    perf.termMemEntries =
        total_groups * ceilDiv(cfg.alpha, fmt.termsPerEntry());
    perf.indexMemEntries =
        total_groups * ceilDiv(cfg.alpha, fmt.indexesPerEntry());

    // Data memory: each tile row re-streams the K x N activations,
    // beta terms per value packed contiguously into memory entries
    // (values share entries; Sec. 5.4 packs multiple increments per
    // entry to use the full memory width).
    const std::uint64_t data_bits =
        tile_rows * k * n * cfg.beta * fmt.termBits();
    perf.dataMemEntries = ceilDiv(data_bits, fmt.entryBits);
    return perf;
}

NetworkPerf
networkPerformance(const std::vector<LayerGeometry>& layers,
                   const SubModelConfig& cfg,
                   const SystolicArrayConfig& array,
                   const PackedTermFormat& fmt,
                   const SystemEnergyModel& energy)
{
    // Layers are evaluated independently and folded with integer
    // addition, so the totals do not depend on thread count.
    NetworkPerf net = parallelReduce(
        layers.size(), parallelGrain(256), NetworkPerf{},
        [&](std::size_t l0, std::size_t l1) {
            NetworkPerf part;
            for (std::size_t l = l0; l < l1; ++l) {
                const LayerPerf perf =
                    layerPerformance(layers[l], cfg, array, fmt);
                part.cycles += perf.cycles;
                part.termPairs += perf.termPairs;
                part.memEntries += perf.termMemEntries +
                                   perf.indexMemEntries +
                                   perf.dataMemEntries;
            }
            return part;
        },
        [](NetworkPerf acc, const NetworkPerf& part) {
            acc.cycles += part.cycles;
            acc.termPairs += part.termPairs;
            acc.memEntries += part.memEntries;
            return acc;
        });
    net.latencyMs = static_cast<double>(net.cycles) /
                    (array.clockMhz * 1e6) * 1e3;
    const double kilo_cells =
        static_cast<double>(array.rows * array.cols) / 1000.0;
    net.energyUnits =
        static_cast<double>(net.termPairs) * energy.perTermPair +
        static_cast<double>(net.memEntries) * energy.perMemoryEntry +
        static_cast<double>(net.cycles) *
            energy.staticPerCyclePerKiloCell * kilo_cells;
    // Energy units are picojoules; samples/J = 1e12 / pJ-per-sample.
    net.samplesPerJoule =
        net.energyUnits > 0.0 ? 1e12 / net.energyUnits : 0.0;

    // Whole-network accounting (accumulates across sweep calls); the
    // inputs are integer totals from a deterministic reduction, so
    // the counters match at any thread count.
    static obs::Counter c_networks("hw.perf.networks");
    static obs::Counter c_cycles("hw.perf.cycles");
    static obs::Counter c_pairs("hw.perf.term_pairs");
    static obs::Counter c_mem("hw.perf.mem_entries");
    c_networks.add(1);
    c_cycles.add(static_cast<std::int64_t>(net.cycles));
    c_pairs.add(static_cast<std::int64_t>(net.termPairs));
    c_mem.add(static_cast<std::int64_t>(net.memEntries));
    return net;
}

std::vector<LayerGeometry>
referenceNetwork(const std::string& name)
{
    std::vector<LayerGeometry> layers;
    auto add = [&](const std::string& lname, std::size_t m, std::size_t k,
                   std::size_t n) {
        layers.push_back(LayerGeometry{lname, m, k, n});
    };

    if (name == "resnet18") {
        add("conv1", 64, 147, 112 * 112);
        // Four basic-block stages, two blocks each.
        const std::size_t widths[4] = {64, 128, 256, 512};
        const std::size_t sides[4] = {56, 28, 14, 7};
        std::size_t in = 64;
        for (int s = 0; s < 4; ++s) {
            const std::size_t w = widths[s];
            const std::size_t n = sides[s] * sides[s];
            add("stage" + std::to_string(s + 1) + ".b1.conv1", w, in * 9,
                n);
            add("stage" + std::to_string(s + 1) + ".b1.conv2", w, w * 9,
                n);
            if (in != w)
                add("stage" + std::to_string(s + 1) + ".down", w, in, n);
            add("stage" + std::to_string(s + 1) + ".b2.conv1", w, w * 9,
                n);
            add("stage" + std::to_string(s + 1) + ".b2.conv2", w, w * 9,
                n);
            in = w;
        }
        add("fc", 1000, 512, 1);
        return layers;
    }

    if (name == "resnet50") {
        add("conv1", 64, 147, 112 * 112);
        struct Stage
        {
            std::size_t out, mid, blocks, side;
        };
        const Stage stages[4] = {{256, 64, 3, 56},
                                 {512, 128, 4, 28},
                                 {1024, 256, 6, 14},
                                 {2048, 512, 3, 7}};
        std::size_t in = 64;
        for (int s = 0; s < 4; ++s) {
            const Stage& st = stages[s];
            const std::size_t n = st.side * st.side;
            for (std::size_t b = 0; b < st.blocks; ++b) {
                const std::string base = "stage" + std::to_string(s + 1) +
                                         ".b" + std::to_string(b + 1);
                add(base + ".conv1", st.mid, in, n);
                add(base + ".conv2", st.mid, st.mid * 9, n);
                add(base + ".conv3", st.out, st.mid, n);
                if (b == 0)
                    add(base + ".down", st.out, in, n);
                in = st.out;
            }
        }
        add("fc", 1000, 2048, 1);
        return layers;
    }

    if (name == "mobilenet-v2") {
        add("stem", 32, 27, 112 * 112);
        struct Block
        {
            std::size_t t, c, n, s;
        };
        const Block blocks[7] = {{1, 16, 1, 1},  {6, 24, 2, 2},
                                 {6, 32, 3, 2},  {6, 64, 4, 2},
                                 {6, 96, 3, 1},  {6, 160, 3, 2},
                                 {6, 320, 1, 1}};
        std::size_t in = 32;
        std::size_t side = 112;
        int id = 0;
        for (const Block& blk : blocks) {
            for (std::size_t r = 0; r < blk.n; ++r) {
                const std::size_t stride = (r == 0) ? blk.s : 1;
                side = (stride == 2) ? side / 2 : side;
                const std::size_t n = side * side;
                const std::size_t mid = in * blk.t;
                const std::string base = "ir" + std::to_string(id++);
                if (blk.t != 1)
                    add(base + ".expand", mid, in, n);
                add(base + ".dw", mid, 9, n);
                add(base + ".project", blk.c, mid, n);
                in = blk.c;
            }
        }
        add("head", 1280, 320, 7 * 7);
        add("fc", 1000, 1280, 1);
        return layers;
    }

    if (name == "lstm") {
        // 2-layer, 650 hidden units (Sec. 6.4.2 model).  Positions
        // model a batch of 16 independent sequences evaluated
        // together (the standard LM inference deployment); per-token
        // cost is this divided by 16.
        add("lstm1.x", 4 * 650, 650, 16);
        add("lstm1.h", 4 * 650, 650, 16);
        add("lstm2.x", 4 * 650, 650, 16);
        add("lstm2.h", 4 * 650, 650, 16);
        add("decoder", 33278, 650, 16);
        return layers;
    }

    if (name == "yolo-v5s") {
        // Representative backbone + head convolutions at 640x640
        // covering the bulk of YOLOv5s compute.
        add("stem", 32, 108, 320 * 320);
        add("conv1", 64, 288, 160 * 160);
        add("c3_1", 64, 576, 160 * 160);
        add("conv2", 128, 576, 80 * 80);
        add("c3_2", 128, 1152, 80 * 80);
        add("conv3", 256, 1152, 40 * 40);
        add("c3_3", 256, 2304, 40 * 40);
        add("conv4", 512, 2304, 20 * 20);
        add("c3_4", 512, 4608, 20 * 20);
        add("head1", 255, 128, 80 * 80);
        add("head2", 255, 256, 40 * 40);
        add("head3", 255, 512, 20 * 20);
        return layers;
    }

    fatal("referenceNetwork: unknown network '", name, "'");
}

} // namespace mrq
