/**
 * @file
 * Runtime resolution controller (Fig. 1, right).
 *
 * The paper's deployment story lets "a user (or other selection
 * mechanism) select which sub-model to use based on the current
 * resource constraints".  This module is that selection mechanism:
 * given the trained ladder's quality metrics and the performance
 * model's per-configuration latency/energy, it picks the
 * highest-quality sub-model that fits a runtime budget.
 */

#ifndef MRQ_HW_CONTROLLER_HPP
#define MRQ_HW_CONTROLLER_HPP

#include <optional>
#include <vector>

#include "core/quant_config.hpp"
#include "hw/perf_model.hpp"

namespace mrq {

/** One deployable operating point of a multi-resolution model. */
struct OperatingPoint
{
    SubModelConfig config;
    double quality = 0.0;      ///< Accuracy/mAP (higher better).
    double latencyMs = 0.0;    ///< Per-sample latency on the array.
    double energyPj = 0.0;     ///< Per-sample energy estimate.
};

/** Runtime constraints a selection must satisfy. */
struct ResourceBudget
{
    /** Maximum tolerable latency; <= 0 means unconstrained. */
    double maxLatencyMs = 0.0;

    /** Maximum tolerable energy per sample; <= 0 means unconstrained. */
    double maxEnergyPj = 0.0;
};

/** Precomputes operating points and answers selection queries. */
class ResolutionController
{
  public:
    /**
     * Build the operating-point table for a deployment.
     *
     * @param ladder    Trained sub-model ladder.
     * @param qualities Per-ladder-entry quality metric (same order).
     * @param layers    The deployed network's layer geometry.
     * @param array     Array configuration.
     */
    ResolutionController(const SubModelLadder& ladder,
                         const std::vector<double>& qualities,
                         const std::vector<LayerGeometry>& layers,
                         const SystolicArrayConfig& array = {},
                         const SystemEnergyModel& energy = {});

    /** All operating points, ascending in gamma. */
    const std::vector<OperatingPoint>& points() const { return points_; }

    /**
     * Highest-quality point satisfying @p budget (ties broken toward
     * lower energy), or nullopt when nothing fits.
     */
    std::optional<OperatingPoint>
    select(const ResourceBudget& budget) const;

    /**
     * Points on the quality/latency Pareto frontier — the menu a
     * runtime scheduler would actually switch between.
     */
    std::vector<OperatingPoint> paretoFrontier() const;

  private:
    std::vector<OperatingPoint> points_;
};

} // namespace mrq

#endif // MRQ_HW_CONTROLLER_HPP
