/**
 * @file
 * Laconic Processing Element baseline (Sec. 7.2, after Sharify et al.).
 *
 * The Laconic PE performs 16 weight/data multiplications in parallel
 * at term granularity with Booth-encoded operands.  Without
 * group-based quantization it must assume the worst case of 3 terms
 * per 5-bit operand, i.e. 3 x 3 = 9 cycles per multiplication window
 * and 144 term pairs for a 16-long dot product.  Products land in
 * exponent histogram buckets (6-bit coefficient counters) that are
 * reduced at the end.
 */

#ifndef MRQ_HW_LACONIC_HPP
#define MRQ_HW_LACONIC_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "core/sdr.hpp"

namespace mrq {

/** Result of a Laconic PE dot-product computation. */
struct LaconicResult
{
    std::int64_t value = 0;
    std::size_t cycles = 0;          ///< Worst-case schedule cycles.
    std::size_t termPairsBudgeted = 0; ///< 3 * 3 * lanes.
    std::size_t termPairsActive = 0; ///< Nonzero pairs processed.
    std::size_t bucketAdds = 0;      ///< Histogram update activity.
};

/** 16-lane Laconic PE model. */
class LaconicPe
{
  public:
    static constexpr std::size_t kLanes = 16;
    static constexpr std::size_t kMaxTermsPerValue = 3;

    /**
     * Compute a 16-long dot product y = sum w_i * x_i.
     *
     * @param weights 16 signed 5-bit-range weights.
     * @param data    16 signed 5-bit-range data values.
     */
    LaconicResult compute(const std::vector<std::int64_t>& weights,
                          const std::vector<std::int64_t>& data) const;
};

} // namespace mrq

#endif // MRQ_HW_LACONIC_HPP
