/**
 * @file
 * Full mMAC inference system (Fig. 9): weight buffer + systolic array
 * + SDR encoders + term quantizers + data buffer, executing a trained
 * model end to end.
 *
 * The engine walks a plain Sequential pipeline (Conv2d / BatchNorm2d /
 * PactQuant / MaxPool2d / GlobalAvgPool / Linear / ReLU / Dropout) and
 * runs every conv/linear through the cycle-accurate mMAC systolic
 * simulator on the integer lattice, exactly as deployed hardware
 * would: activations are UQ + top-beta term-quantized at each matmul
 * input, weights are group term-quantized at load.  Non-matmul layers
 * (BN, clamps, pooling) run in float, as they would on the host or in
 * dedicated activation blocks.
 *
 * Functional output matches the training-side fake-quantized forward
 * to float rounding — asserted in tests/hw.
 */

#ifndef MRQ_HW_SYSTEM_HPP
#define MRQ_HW_SYSTEM_HPP

#include <vector>

#include "hw/deployment.hpp"
#include "hw/perf_model.hpp"
#include "hw/systolic.hpp"
#include "nn/sequential.hpp"

namespace mrq {

/** Accumulated deployment report of an engine run. */
struct HwReport
{
    SystolicStats systolic;            ///< Functional-sim counters.
    std::uint64_t termMemEntries = 0;  ///< Weight-term memory reads.
    std::uint64_t indexMemEntries = 0; ///< Weight-index memory reads.
    std::uint64_t dataMemEntries = 0;  ///< Data buffer reads.
    double latencyMs = 0.0;            ///< At the array clock.
    double energyPj = 0.0;             ///< SystemEnergyModel estimate.
};

/** Runs a trained plain-Sequential model on the mMAC system. */
class HwInferenceEngine
{
  public:
    /**
     * @param model Trained model (treated read-only; its quant context
     *              is detached during engine runs).
     * @param cfg   The deployed sub-model (TQ mode).
     * @param array Simulated array geometry (functional cycles use
     *              this; keep it small for simulation speed).
     * @param fmt   Packed storage format for memory accounting.
     */
    HwInferenceEngine(Sequential& model, const SubModelConfig& cfg,
                      const SystolicArrayConfig& array = {16, 16, 150.0},
                      const PackedTermFormat& fmt = {});

    /**
     * Attach a packed deployment image: conv/linear weights are then
     * read from the image's term/index memories (the true device
     * flow) instead of being re-quantized from the model's master
     * weights.  The image must have been built from this model with
     * the same bits/group size, and its ladder must contain the
     * engine's alpha.
     */
    void attachImage(const DeploymentImage& image);

    /**
     * Run a batch through the system.
     * @param x [N, 3, H, W] input images in [0, 1].
     * @return Model logits.
     */
    Tensor forward(const Tensor& x);

    /** Deployment counters accumulated across forward() calls. */
    HwReport report() const;

    /** Reset accumulated counters. */
    void resetReport();

    /**
     * Matrix-multiply geometry of each distinct conv/linear layer seen
     * during forward() calls (per-sample positions), e.g. for feeding
     * the ResolutionController.
     */
    const std::vector<LayerGeometry>& layerGeometries() const
    {
        return geometries_;
    }

  private:
    Tensor runConv(class Conv2d& conv, const Tensor& x, float data_clip,
                   const std::string& name);
    Tensor runLinear(class Linear& lin, const Tensor& x, float data_clip,
                     const std::string& name);

    /**
     * Fetch a layer's packed weights from the attached image.
     * @return False when no image is attached (fall back to master
     *         weights); fatal when an image is attached but lacks the
     *         layer.
     */
    bool fetchImageWeights(const std::string& name,
                           std::vector<std::int64_t>* w_int,
                           float* scale) const;

    /** Integer-lattice matmul through the systolic array + counters. */
    std::vector<std::int64_t>
    arrayMatmul(const std::vector<std::int64_t>& w, std::size_t m,
                std::size_t k, const std::vector<std::int64_t>& x,
                std::size_t n, const std::string& layer_name);

    Sequential& model_;
    SubModelConfig cfg_;
    SystolicArrayConfig arrayCfg_;
    PackedTermFormat fmt_;
    MmacSystolicArray array_;
    SystemEnergyModel energy_;

    HwReport report_;
    std::vector<LayerGeometry> geometries_;

    /** Optional packed weight source (owned by the caller). */
    const DeploymentImage* image_ = nullptr;
};

} // namespace mrq

#endif // MRQ_HW_SYSTEM_HPP
