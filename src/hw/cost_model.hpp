/**
 * @file
 * FPGA resource and energy cost model (Secs. 7.1-7.4).
 *
 * Resource counts (LUT/FF per MAC design) are the paper's measured
 * Table 2 synthesis results, used here as calibration constants.
 * Relative dynamic power per design is calibrated once from the
 * paper's Table 3 (two designs at one gamma fix the constants; the
 * rest of the table then follows from the linear cycles x power model
 * and is *predicted* by this code — see bench_tab3_mac_energy).
 *
 * Documented calibration:
 *   energy(design) = cycles(design) * relativePower(design)
 *   relativePower: mMAC 1.0, pMAC 5.8, bMAC 0.42
 *   (pMAC's multiplier switches far more per cycle than its LUT count
 *   alone suggests; bMAC's serial datapath toggles very little.)
 * Laconic PE: energy = termPairsBudgeted * 1.125 + bucket reduction,
 * calibrated to the paper's single reported 2.7x at gamma = 60.
 */

#ifndef MRQ_HW_COST_MODEL_HPP
#define MRQ_HW_COST_MODEL_HPP

#include <cstddef>
#include <string>

namespace mrq {

/** Per-design FPGA resource footprint (Table 2 calibration). */
struct MacResources
{
    std::size_t luts = 0;
    std::size_t ffs = 0;
};

/** Which MAC design a cost query refers to. */
enum class MacDesign
{
    PMac,
    BMac,
    Mmac,
};

/** Table 2 resource constants. */
MacResources macResources(MacDesign design);

/** Relative dynamic power of a design (mMAC = 1.0). */
double macRelativePower(MacDesign design);

/** Cycles for one g-long dot product on a design. */
std::size_t macCyclesPerGroup(MacDesign design, std::size_t group_size,
                              std::size_t gamma);

/**
 * Energy (arbitrary units, mMAC-normalizable) for one g-long dot
 * product: cycles x relative power.
 */
double macEnergyPerGroup(MacDesign design, std::size_t group_size,
                         std::size_t gamma);

/**
 * Energy efficiency of @p design relative to the mMAC at the same
 * gamma (the Table 3 cell value).
 */
double macRelativeEfficiency(MacDesign design, std::size_t group_size,
                             std::size_t gamma);

/** Laconic PE energy for one 16-long dot product (Sec. 7.2 model). */
double laconicEnergyPerDotProduct();

/** mMAC energy for one 16-long dot product at budget gamma. */
double mmacEnergyPerDotProduct(std::size_t gamma);

/** Human-readable design name. */
std::string macDesignName(MacDesign design);

/**
 * System-level energy coefficients in picojoules, calibrated so the
 * full-system ResNet-18 deployment of Table 4 lands near the paper's
 * measured 71.5 frames/J at 3.98 ms/frame (3.5 W board power):
 * 2 pJ per term-pair op, 8 pJ per on-chip memory entry read, and a
 * small per-cycle static share.
 */
struct SystemEnergyModel
{
    /** Energy per term-pair operation in a cell (pJ). */
    double perTermPair = 2.0;

    /** Energy per on-chip memory entry access (pJ). */
    double perMemoryEntry = 8.0;

    /** Static/clock energy per cycle per 1k cells (pJ). */
    double staticPerCyclePerKiloCell = 0.5;
};

} // namespace mrq

#endif // MRQ_HW_COST_MODEL_HPP
