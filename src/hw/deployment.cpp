#include "hw/deployment.hpp"

#include <cstdint>
#include <fstream>

#include "core/fake_quant.hpp"
#include "core/uniform_quant.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"

namespace mrq {

namespace {

constexpr std::uint32_t kMagic = 0x4d52'5144; // "MRQD"

/** Budget ladder of a (possibly partial) group. */
std::vector<std::size_t>
groupLadder(const std::vector<std::size_t>& ladder, std::size_t g,
            std::size_t len)
{
    std::vector<std::size_t> scaled;
    scaled.reserve(ladder.size());
    for (std::size_t alpha : ladder)
        scaled.push_back(scaledGroupBudget(alpha, g, len));
    return scaled;
}

/** Pack one weight matrix into row-major groups. */
LayerImage
packLayer(const std::string& name, const Tensor& w, float clip, int bits,
          std::size_t g, const std::vector<std::size_t>& ladder,
          const PackedTermFormat& fmt)
{
    require(w.rank() >= 2, "DeploymentImage: rank-2+ weights required");
    LayerImage layer;
    layer.name = name;
    layer.rows = w.dim(0);
    layer.rowLen = w.size() / w.dim(0);

    UniformQuantizer uq;
    uq.bits = bits;
    uq.clip = clip;
    uq.isSigned = true;
    layer.scale = uq.scale();

    std::vector<std::int64_t> vals;
    for (std::size_t row = 0; row < layer.rows; ++row) {
        for (std::size_t base = 0; base < layer.rowLen; base += g) {
            const std::size_t len = std::min(g, layer.rowLen - base);
            vals.clear();
            for (std::size_t i = 0; i < len; ++i)
                vals.push_back(
                    uq.quantize(w[row * layer.rowLen + base + i]));
            const auto rungs = groupLadder(ladder, g, len);
            MultiResGroup group(vals, rungs.back());
            layer.groups.emplace_back(group, rungs, fmt);
        }
    }
    return layer;
}

void
writeU32(std::ofstream& out, std::uint32_t v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t
readU32(std::ifstream& in)
{
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
}

void
writeBytes(std::ofstream& out, const std::vector<std::uint8_t>& bytes)
{
    writeU32(out, static_cast<std::uint32_t>(bytes.size()));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t>
readBytes(std::ifstream& in)
{
    const std::uint32_t len = readU32(in);
    require(len < (1u << 28), "DeploymentImage: corrupt byte length");
    std::vector<std::uint8_t> bytes(len);
    in.read(reinterpret_cast<char*>(bytes.data()), len);
    return bytes;
}

} // namespace

DeploymentImage
DeploymentImage::build(Sequential& model, int bits, std::size_t group_size,
                       std::vector<std::size_t> ladder,
                       const PackedTermFormat& fmt)
{
    require(!ladder.empty(), "DeploymentImage: empty budget ladder");
    DeploymentImage image;
    image.bits_ = bits;
    image.groupSize_ = group_size;
    image.ladder_ = std::move(ladder);
    image.fmt_ = fmt;

    for (std::size_t i = 0; i < model.size(); ++i) {
        Module* child = model.child(i);
        if (auto* conv = dynamic_cast<Conv2d*>(child)) {
            image.layers_.push_back(packLayer(
                "conv@" + std::to_string(i), conv->weight().value,
                conv->quantizer().clip(), bits, group_size,
                image.ladder_, fmt));
        } else if (auto* lin = dynamic_cast<Linear*>(child)) {
            image.layers_.push_back(packLayer(
                "linear@" + std::to_string(i), lin->weight().value,
                lin->quantizer().clip(), bits, group_size,
                image.ladder_, fmt));
        }
    }
    require(!image.layers_.empty(),
            "DeploymentImage: model has no packable layers");
    return image;
}

std::vector<std::int64_t>
DeploymentImage::layerWeights(std::size_t layer, std::size_t alpha) const
{
    require(layer < layers_.size(), "DeploymentImage: layer ", layer,
            " out of range");
    const LayerImage& img = layers_[layer];
    std::vector<std::int64_t> out(img.rows * img.rowLen, 0);

    const std::size_t groups_per_row =
        (img.rowLen + groupSize_ - 1) / groupSize_;
    for (std::size_t row = 0; row < img.rows; ++row) {
        for (std::size_t q = 0; q < groups_per_row; ++q) {
            const std::size_t base = q * groupSize_;
            const std::size_t len =
                std::min(groupSize_, img.rowLen - base);
            const std::size_t budget =
                scaledGroupBudget(alpha, groupSize_, len);
            const auto vals =
                img.groups[row * groups_per_row + q].decode(budget);
            for (std::size_t i = 0; i < len; ++i)
                out[row * img.rowLen + base + i] = vals[i];
        }
    }
    return out;
}

std::size_t
DeploymentImage::storageBits() const
{
    std::size_t bits = 0;
    for (const LayerImage& layer : layers_)
        for (const PackedGroup& group : layer.groups)
            bits += group.storageBits();
    return bits;
}

std::size_t
DeploymentImage::memoryEntriesFor(std::size_t alpha) const
{
    std::size_t entries = 0;
    for (const LayerImage& layer : layers_) {
        const std::size_t groups_per_row =
            (layer.rowLen + groupSize_ - 1) / groupSize_;
        for (std::size_t row = 0; row < layer.rows; ++row) {
            for (std::size_t q = 0; q < groups_per_row; ++q) {
                const std::size_t base = q * groupSize_;
                const std::size_t len =
                    std::min(groupSize_, layer.rowLen - base);
                const std::size_t budget =
                    scaledGroupBudget(alpha, groupSize_, len);
                const PackedGroup& group =
                    layer.groups[row * groups_per_row + q];
                entries += group.termEntriesFor(budget) +
                           group.indexEntriesFor(budget);
            }
        }
    }
    return entries;
}

void
DeploymentImage::save(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    require(out.good(), "DeploymentImage::save: cannot open '", path,
            "'");
    writeU32(out, kMagic);
    writeU32(out, static_cast<std::uint32_t>(bits_));
    writeU32(out, static_cast<std::uint32_t>(groupSize_));
    writeU32(out, static_cast<std::uint32_t>(ladder_.size()));
    for (std::size_t rung : ladder_)
        writeU32(out, static_cast<std::uint32_t>(rung));
    writeU32(out, static_cast<std::uint32_t>(layers_.size()));
    for (const LayerImage& layer : layers_) {
        writeU32(out, static_cast<std::uint32_t>(layer.name.size()));
        out.write(layer.name.data(),
                  static_cast<std::streamsize>(layer.name.size()));
        writeU32(out, static_cast<std::uint32_t>(layer.rows));
        writeU32(out, static_cast<std::uint32_t>(layer.rowLen));
        out.write(reinterpret_cast<const char*>(&layer.scale),
                  sizeof(layer.scale));
        writeU32(out, static_cast<std::uint32_t>(layer.groups.size()));
        for (const PackedGroup& group : layer.groups) {
            writeU32(out, static_cast<std::uint32_t>(group.groupSize()));
            writeBytes(out, group.packedTerms());
            writeBytes(out, group.packedIndexes());
        }
    }
    require(out.good(), "DeploymentImage::save: write failed");
}

DeploymentImage
DeploymentImage::load(const std::string& path, const PackedTermFormat& fmt)
{
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "DeploymentImage::load: cannot open '", path, "'");
    require(readU32(in) == kMagic,
            "DeploymentImage::load: '", path, "' is not an image file");

    DeploymentImage image;
    image.fmt_ = fmt;
    image.bits_ = static_cast<int>(readU32(in));
    image.groupSize_ = readU32(in);
    const std::uint32_t rungs = readU32(in);
    require(rungs > 0 && rungs < 64, "DeploymentImage::load: bad ladder");
    for (std::uint32_t i = 0; i < rungs; ++i)
        image.ladder_.push_back(readU32(in));

    const std::uint32_t n_layers = readU32(in);
    require(n_layers > 0 && n_layers < (1u << 16),
            "DeploymentImage::load: bad layer count");
    for (std::uint32_t l = 0; l < n_layers; ++l) {
        LayerImage layer;
        const std::uint32_t name_len = readU32(in);
        require(name_len < 1024, "DeploymentImage::load: bad name");
        layer.name.resize(name_len);
        in.read(layer.name.data(), name_len);
        layer.rows = readU32(in);
        layer.rowLen = readU32(in);
        in.read(reinterpret_cast<char*>(&layer.scale),
                sizeof(layer.scale));
        const std::uint32_t n_groups = readU32(in);
        const std::size_t groups_per_row =
            (layer.rowLen + image.groupSize_ - 1) / image.groupSize_;
        require(n_groups == layer.rows * groups_per_row,
                "DeploymentImage::load: group count mismatch");
        for (std::uint32_t q = 0; q < n_groups; ++q) {
            const std::size_t group_size = readU32(in);
            auto terms = readBytes(in);
            auto indexes = readBytes(in);
            // Tail groups carry proportionally scaled rungs.
            const std::size_t col = q % groups_per_row;
            const std::size_t len = std::min(
                image.groupSize_, layer.rowLen - col * image.groupSize_);
            std::vector<std::size_t> rung_ladder;
            for (std::size_t rung : image.ladder_)
                rung_ladder.push_back(
                    scaledGroupBudget(rung, image.groupSize_, len));
            layer.groups.emplace_back(group_size, rung_ladder, fmt,
                                      std::move(terms),
                                      std::move(indexes));
        }
        require(in.good(), "DeploymentImage::load: truncated layer");
        image.layers_.push_back(std::move(layer));
    }
    return image;
}

} // namespace mrq
