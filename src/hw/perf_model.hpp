/**
 * @file
 * Analytic performance model of the mMAC systolic system (Fig. 9)
 * for full-size networks — validated against the cycle-accurate
 * small-array simulator in tests/hw.
 *
 * A conv/FC layer is a matrix multiply [M, K] x [K, N]:
 *   M = output channels, K = inC * k * k, N = output positions.
 * The weight matrix tiles onto an R x C array of mMAC cells, each
 * holding one g-long weight group; a tile processes all N positions
 * at gamma cycles per group beat, plus pipeline fill (R + C) and the
 * alpha-cycle weight-queue load per tile.
 */

#ifndef MRQ_HW_PERF_MODEL_HPP
#define MRQ_HW_PERF_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/packed_storage.hpp"
#include "core/quant_config.hpp"
#include "hw/cost_model.hpp"

namespace mrq {

/** Systolic array geometry and clock. */
struct SystolicArrayConfig
{
    std::size_t rows = 128;
    std::size_t cols = 128;
    double clockMhz = 150.0;
};

/** One layer as a matrix-multiply problem. */
struct LayerGeometry
{
    std::string name;
    std::size_t outputs = 0;   ///< M (rows of W).
    std::size_t inner = 0;     ///< K (dot-product length).
    std::size_t positions = 0; ///< N (input columns / spatial outputs).
};

/** Per-layer performance estimate. */
struct LayerPerf
{
    std::uint64_t cycles = 0;
    std::uint64_t termPairs = 0;
    std::uint64_t termMemEntries = 0;
    std::uint64_t indexMemEntries = 0;
    std::uint64_t dataMemEntries = 0;
};

/** Whole-network performance estimate. */
struct NetworkPerf
{
    std::uint64_t cycles = 0;
    std::uint64_t termPairs = 0;
    std::uint64_t memEntries = 0;
    double latencyMs = 0.0;
    double energyUnits = 0.0;
    double samplesPerJoule = 0.0; ///< Relative; see energy model note.
};

/**
 * Cycle count of one layer on the array.  When a layer occupies only
 * part of the array (a single tile in a dimension), the idle rows /
 * columns hold weight replicas that process additional input
 * positions in parallel — the standard utilization trick for small
 * layers on large arrays.  Shared by the analytic model and the
 * cycle-accurate simulator so the two always agree.
 */
std::uint64_t layerCycles(const LayerGeometry& layer,
                          const SubModelConfig& cfg, std::size_t rows,
                          std::size_t cols);

/** Estimate one layer under @p cfg on @p array. */
LayerPerf layerPerformance(const LayerGeometry& layer,
                           const SubModelConfig& cfg,
                           const SystolicArrayConfig& array,
                           const PackedTermFormat& fmt);

/**
 * Aggregate a network; energy uses the SystemEnergyModel coefficients
 * and latency uses the array clock.
 */
NetworkPerf networkPerformance(const std::vector<LayerGeometry>& layers,
                               const SubModelConfig& cfg,
                               const SystolicArrayConfig& array,
                               const PackedTermFormat& fmt,
                               const SystemEnergyModel& energy);

/**
 * Real layer geometries of the paper's evaluated networks (ImageNet /
 * Wikitext-2 / COCO scale), used by the hardware benches: the
 * performance model needs only layer shapes, not trained weights.
 * Names: "resnet18", "resnet50", "mobilenet-v2", "lstm", "yolo-v5s".
 */
std::vector<LayerGeometry> referenceNetwork(const std::string& name);

} // namespace mrq

#endif // MRQ_HW_PERF_MODEL_HPP
