#include "hw/systolic.hpp"

#include "core/fake_quant.hpp"
#include "core/term_quant.hpp"
#include "hw/perf_model.hpp"
#include "kernels/blocking.hpp"
#include "runtime/thread_pool.hpp"

namespace mrq {

using kernels::ceilDiv;

MmacSystolicArray::MmacSystolicArray(std::size_t rows, std::size_t cols,
                                     const SubModelConfig& cfg)
    : rows_(rows), cols_(cols), cfg_(cfg)
{
    require(rows > 0 && cols > 0, "MmacSystolicArray: empty array");
    require(cfg.mode == QuantMode::Tq,
            "MmacSystolicArray: the array runs TQ sub-models");
}

std::vector<std::int64_t>
MmacSystolicArray::matmul(const std::vector<std::int64_t>& w, std::size_t m,
                          std::size_t k,
                          const std::vector<std::int64_t>& x, std::size_t n,
                          SystolicStats* stats) const
{
    require(w.size() == m * k, "MmacSystolicArray::matmul: W size");
    require(x.size() == k * n, "MmacSystolicArray::matmul: X size");
    const std::size_t g = cfg_.groupSize;
    const std::size_t groups_per_row = ceilDiv(k, g);

    // Pre-quantize data terms: top-beta terms per value, exactly what
    // the SDR encoder + term quantizer units deliver (Fig. 9).  Terms
    // stream into flat per-value slots of beta entries (no per-value
    // vectors): one counting visit finds how many low-order terms to
    // drop, a second visit emits the survivors.  The emitted order is
    // ascending exponent, which the integer pair accumulation does not
    // observe.
    std::vector<std::int8_t> d_exps(k * n * cfg_.beta);
    std::vector<std::int8_t> d_signs(k * n * cfg_.beta);
    std::vector<std::uint8_t> d_counts(k * n);
    parallelFor(k * n, parallelGrain(64),
                [&](std::size_t e0, std::size_t e1) {
        for (std::size_t e = e0; e < e1; ++e) {
            std::size_t total = 0;
            visitTerms(x[e], cfg_.encoding,
                       [&](std::int8_t, std::int8_t) { ++total; });
            const std::size_t keep = std::min(cfg_.beta, total);
            std::size_t skip = total - keep;
            std::int8_t* ep = d_exps.data() + e * cfg_.beta;
            std::int8_t* sp = d_signs.data() + e * cfg_.beta;
            std::size_t out = 0;
            visitTerms(x[e], cfg_.encoding,
                       [&](std::int8_t exp, std::int8_t sign) {
                if (skip > 0) {
                    --skip;
                    return;
                }
                ep[out] = exp;
                sp[out] = sign;
                ++out;
            });
            d_counts[e] = static_cast<std::uint8_t>(keep);
        }
    });

    std::vector<std::int64_t> y(m * n, 0);
    SystolicStats local;
    const std::size_t tile_rows = ceilDiv(m, rows_);
    const std::size_t tile_cols = ceilDiv(groups_per_row, cols_);
    local.tiles = tile_rows * tile_cols;
    // Cycle accounting is shared with the analytic model (including
    // the idle-cell replication rule), so the two never diverge.
    local.cycles = layerCycles(LayerGeometry{"", m, k, n}, cfg_, rows_,
                               cols_);

    // Output rows are independent: each chunk simulates its own Mmac
    // cell over a disjoint band of y, and the term-pair / increment
    // counters are integers, so the totals are exact regardless of
    // thread count.
    struct OpCounts
    {
        std::uint64_t termPairs = 0;
        std::uint64_t incrementOps = 0;
    };
    const OpCounts counts = parallelReduce(
        m, parallelGrain(groups_per_row * n * g),
        OpCounts{},
        [&](std::size_t i0, std::size_t i1) {
            OpCounts part;
            Mmac cell(g, cfg_.alpha, cfg_.beta);
            std::vector<TermSpan> slice(g);
            std::vector<std::int64_t> group_vals;
            for (std::size_t i = i0; i < i1; ++i) {
                for (std::size_t q = 0; q < groups_per_row; ++q) {
                    const std::size_t base = q * g;
                    const std::size_t len = std::min(g, k - base);
                    group_vals.assign(w.begin() + i * k + base,
                                      w.begin() + i * k + base + len);
                    const std::size_t budget =
                        scaledGroupBudget(cfg_.alpha, g, len);
                    MultiResGroup group(group_vals, budget, cfg_.encoding);
                    cell.loadWeights(
                        MmacWeightQueues::fromGroup(group, budget));

                    for (std::size_t j = 0; j < n; ++j) {
                        for (std::size_t s = 0; s < g; ++s) {
                            if (s < len) {
                                const std::size_t e = (base + s) * n + j;
                                slice[s] = TermSpan{
                                    d_exps.data() + e * cfg_.beta,
                                    d_signs.data() + e * cfg_.beta,
                                    d_counts[e]};
                            } else {
                                slice[s] = TermSpan{};
                            }
                        }
                        const MmacResult r = cell.computeGroupFlat(
                            slice.data(), y[i * n + j]);
                        y[i * n + j] = r.value;
                        part.termPairs += r.termPairs;
                        part.incrementOps += r.incrementOps;
                    }
                }
            }
            return part;
        },
        [](OpCounts acc, const OpCounts& part) {
            acc.termPairs += part.termPairs;
            acc.incrementOps += part.incrementOps;
            return acc;
        });
    local.termPairs += counts.termPairs;
    local.incrementOps += counts.incrementOps;
    if (stats)
        *stats = local;
    return y;
}

} // namespace mrq
