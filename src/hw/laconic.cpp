#include "hw/laconic.hpp"

namespace mrq {

LaconicResult
LaconicPe::compute(const std::vector<std::int64_t>& weights,
                   const std::vector<std::int64_t>& data) const
{
    require(weights.size() == kLanes && data.size() == kLanes,
            "LaconicPe::compute: expected ", kLanes, " lanes");

    LaconicResult result;
    // Histogram buckets: signed coefficient count per output exponent.
    // Booth terms on 5-bit operands reach exponent 6 each, so pair
    // exponents reach 12.
    std::array<std::int64_t, 16> buckets{};

    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const auto w_terms = encodeBooth(weights[lane]);
        const auto d_terms = encodeBooth(data[lane]);
        require(w_terms.size() <= kMaxTermsPerValue &&
                    d_terms.size() <= kMaxTermsPerValue,
                "LaconicPe::compute: operand exceeds the 3-term Booth "
                "assumption");
        for (const Term& w : w_terms) {
            for (const Term& d : d_terms) {
                const int exponent = w.exponent + d.exponent;
                invariant(exponent < static_cast<int>(buckets.size()),
                          "LaconicPe: bucket overflow");
                buckets[static_cast<std::size_t>(exponent)] +=
                    w.sign * d.sign;
                ++result.termPairsActive;
                ++result.bucketAdds;
            }
        }
    }

    // Reduction: every bucket is summed regardless of occupancy (the
    // under-utilization the paper calls out).
    for (std::size_t e = 0; e < buckets.size(); ++e) {
        result.value += buckets[e] * (std::int64_t{1} << e);
        ++result.bucketAdds;
    }

    // Worst-case schedule: 3 x 3 windows, one pair per lane per cycle.
    result.cycles = kMaxTermsPerValue * kMaxTermsPerValue;
    result.termPairsBudgeted = kMaxTermsPerValue * kMaxTermsPerValue *
                               kLanes;
    return result;
}

} // namespace mrq
