#include "hw/laconic.hpp"

#include "core/term_stream.hpp"
#include "kernels/kernels.hpp"
#include "kernels/roofline.hpp"

namespace mrq {

namespace {

/** Stream a value's Booth terms into fixed stack arrays. */
std::size_t
boothToArrays(std::int64_t value, std::int8_t* exps, std::int8_t* signs,
              std::size_t cap)
{
    std::size_t count = 0;
    visitBoothTerms(value, [&](std::int8_t exp, std::int8_t sign) {
        require(count < cap,
                "LaconicPe::compute: operand exceeds the 3-term Booth "
                "assumption");
        exps[count] = exp;
        signs[count] = sign;
        ++count;
    });
    return count;
}

} // namespace

LaconicResult
LaconicPe::compute(const std::vector<std::int64_t>& weights,
                   const std::vector<std::int64_t>& data) const
{
    require(weights.size() == kLanes && data.size() == kLanes,
            "LaconicPe::compute: expected ", kLanes, " lanes");

    LaconicResult result;
    // Histogram buckets: signed coefficient count per output exponent.
    // Booth terms on 5-bit operands reach exponent 6 each, so pair
    // exponents reach 12.
    std::array<std::int64_t, 16> buckets{};

    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        std::int8_t w_exps[kMaxTermsPerValue];
        std::int8_t w_signs[kMaxTermsPerValue];
        std::int8_t d_exps[kMaxTermsPerValue];
        std::int8_t d_signs[kMaxTermsPerValue];
        const std::size_t w_n = boothToArrays(weights[lane], w_exps,
                                              w_signs, kMaxTermsPerValue);
        const std::size_t d_n = boothToArrays(data[lane], d_exps, d_signs,
                                              kMaxTermsPerValue);
        for (std::size_t wi = 0; wi < w_n; ++wi) {
            for (std::size_t di = 0; di < d_n; ++di) {
                const int exponent = w_exps[wi] + d_exps[di];
                invariant(exponent < static_cast<int>(buckets.size()),
                          "LaconicPe: bucket overflow");
                buckets[static_cast<std::size_t>(exponent)] +=
                    w_signs[wi] * d_signs[di];
                ++result.termPairsActive;
                ++result.bucketAdds;
            }
        }
    }

    // Reduction: every bucket is summed regardless of occupancy (the
    // under-utilization the paper calls out).  buckets[e] * 2^e summed
    // over all exponents is what the shifted-add kernel computes.
    result.value = kernels::kernels().weightedBucketSum(buckets.data(),
                                                        buckets.size());
    kernels::recordKernelElems(kernels::KernelId::BucketSum,
                               static_cast<std::int64_t>(buckets.size()));
    result.bucketAdds += buckets.size();

    // Worst-case schedule: 3 x 3 windows, one pair per lane per cycle.
    result.cycles = kMaxTermsPerValue * kMaxTermsPerValue;
    result.termPairsBudgeted = kMaxTermsPerValue * kMaxTermsPerValue *
                               kLanes;
    return result;
}

} // namespace mrq
