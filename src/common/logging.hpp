/**
 * @file
 * Error-reporting helpers shared across the library.
 *
 * Follows the gem5 convention: `panic` is for internal invariant
 * violations (library bugs), `fatal` is for unrecoverable user errors
 * (bad configuration, shape mismatches caused by the caller).
 */

#ifndef MRQ_COMMON_LOGGING_HPP
#define MRQ_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mrq {

/** Exception thrown for unrecoverable caller errors (bad arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
appendParts(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
appendParts(std::ostringstream& os, const T& part, const Rest&... rest)
{
    os << part;
    appendParts(os, rest...);
}

} // namespace detail

/**
 * Abort with a caller-error message.
 *
 * @param parts Message fragments streamed together.
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts&... parts)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::appendParts(os, parts...);
    throw FatalError(os.str());
}

/**
 * Abort with an internal-bug message.  Use when a condition can only be
 * false if the library itself is broken.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts&... parts)
{
    std::ostringstream os;
    os << "panic: ";
    detail::appendParts(os, parts...);
    throw PanicError(os.str());
}

/** Require a caller-supplied condition, otherwise fatal(). */
template <typename... Parts>
void
require(bool cond, const Parts&... parts)
{
    if (!cond)
        fatal(parts...);
}

/** Assert an internal invariant, otherwise panic(). */
template <typename... Parts>
void
invariant(bool cond, const Parts&... parts)
{
    if (!cond)
        panic(parts...);
}

} // namespace mrq

#endif // MRQ_COMMON_LOGGING_HPP
