/**
 * @file
 * Deterministic random number generation for the whole library.
 *
 * We use xoshiro256** seeded through splitmix64.  Every experiment and
 * test constructs its own Rng from an explicit seed so runs are fully
 * reproducible; nothing in the library touches global RNG state.
 */

#ifndef MRQ_COMMON_RNG_HPP
#define MRQ_COMMON_RNG_HPP

#include <cmath>
#include <cstdint>

namespace mrq {

/** Deterministic xoshiro256** generator with sampling helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Lemire-style rejection-free enough for our use; simple modulo
        // bias is negligible for the small n used here, but we still use
        // the multiply-shift reduction for uniformity.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Standard normal sample (Box-Muller, cached second value). */
    double
    normal()
    {
        if (hasCached_) {
            hasCached_ = false;
            return cached_;
        }
        double u1 = uniform();
        double u2 = uniform();
        // Avoid log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cached_ = r * std::sin(theta);
        hasCached_ = true;
        return r * std::cos(theta);
    }

    /** Normal sample with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Bernoulli sample with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    double cached_ = 0.0;
    bool hasCached_ = false;
};

} // namespace mrq

#endif // MRQ_COMMON_RNG_HPP
