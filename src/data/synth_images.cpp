#include "data/synth_images.hpp"

#include <algorithm>
#include <cmath>

namespace mrq {

SynthImages::SynthImages(std::size_t train_count, std::size_t test_count,
                         std::uint64_t seed, std::size_t size,
                         std::size_t classes, double noise)
    : size_(size), classes_(classes), noise_(noise)
{
    require(classes_ >= 2, "SynthImages: need at least two classes");
    Rng train_rng(seed);
    Rng test_rng(seed ^ 0xdeadbeefULL);
    generate(trainImages_, trainLabels_, train_count, train_rng);
    generate(testImages_, testLabels_, test_count, test_rng);
}

void
SynthImages::generate(Tensor& images, std::vector<int>& labels,
                      std::size_t count, Rng& rng)
{
    images = Tensor({count, 3, size_, size_});
    labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(rng.uniformInt(classes_));
        labels[i] = label;
        renderSample(images.data() + i * 3 * size_ * size_, label, rng);
    }
}

void
SynthImages::renderSample(float* pixels, int label, Rng& rng) const
{
    // Class-specific texture parameters: orientation sweeps a half
    // circle across classes in fine steps, frequency drifts slowly,
    // and the color mix rotates through channel space.  Neighboring
    // classes differ subtly, so the task has headroom: quantization
    // budgets visibly trade accuracy for term operations.
    const double theta =
        M_PI * static_cast<double>(label) / static_cast<double>(classes_);
    const double freq =
        2.5 + 0.6 * std::sin(1.3 * static_cast<double>(label));
    const double cr = 0.55 + 0.25 * std::cos(2.1 * label);
    const double cg = 0.55 + 0.25 * std::cos(2.1 * label + 2.0);
    const double cb = 0.55 + 0.25 * std::cos(2.1 * label + 4.0);

    // Per-sample nuisance parameters (class-independent, so the shape
    // is a distractor rather than a cue).
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double cx = rng.uniform(0.3, 0.7);
    const double cy = rng.uniform(0.3, 0.7);
    const double shape_r = rng.uniform(0.15, 0.3);
    const bool shape_square = rng.bernoulli(0.5);

    const double inv = 1.0 / static_cast<double>(size_);
    for (std::size_t y = 0; y < size_; ++y) {
        for (std::size_t x = 0; x < size_; ++x) {
            const double u = (static_cast<double>(x) + 0.5) * inv;
            const double v = (static_cast<double>(y) + 0.5) * inv;
            const double proj =
                u * std::cos(theta) + v * std::sin(theta);
            double tex =
                0.5 + 0.5 * std::sin(2.0 * M_PI * freq * proj + phase);

            // Shape mask brightens a class-dependent region.
            const double dx = u - cx, dy = v - cy;
            bool inside;
            if (shape_square) {
                inside = std::fabs(dx) < shape_r &&
                         std::fabs(dy) < shape_r;
            } else {
                inside = dx * dx + dy * dy < shape_r * shape_r;
            }
            if (inside)
                tex = 0.35 + 0.65 * tex;

            const double noise = rng.normal(0.0, noise_);
            const std::size_t idx = y * size_ + x;
            const std::size_t plane = size_ * size_;
            auto emit = [&](std::size_t ch, double weight) {
                double val = tex * weight + noise;
                if (val < 0.0)
                    val = 0.0;
                if (val > 1.0)
                    val = 1.0;
                pixels[ch * plane + idx] = static_cast<float>(val);
            };
            emit(0, cr);
            emit(1, cg);
            emit(2, cb);
        }
    }
}

Tensor
SynthImages::gatherImages(const std::vector<std::size_t>& indices) const
{
    const std::size_t plane = 3 * size_ * size_;
    Tensor out({indices.size(), 3, size_, size_});
    for (std::size_t i = 0; i < indices.size(); ++i) {
        require(indices[i] < trainImages_.dim(0),
                "SynthImages::gatherImages: index out of range");
        const float* src = trainImages_.data() + indices[i] * plane;
        std::copy(src, src + plane, out.data() + i * plane);
    }
    return out;
}

std::vector<int>
SynthImages::gatherLabels(const std::vector<std::size_t>& indices) const
{
    std::vector<int> out(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        out[i] = trainLabels_.at(indices[i]);
    return out;
}

} // namespace mrq
