/**
 * @file
 * Shuffled mini-batch index generation.
 */

#ifndef MRQ_DATA_BATCHER_HPP
#define MRQ_DATA_BATCHER_HPP

#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace mrq {

/** Yields shuffled index batches over a dataset of fixed size. */
class Batcher
{
  public:
    /**
     * @param dataset_size Number of samples.
     * @param batch_size   Samples per batch (last partial batch kept).
     * @param seed         Shuffle seed.
     */
    Batcher(std::size_t dataset_size, std::size_t batch_size,
            std::uint64_t seed)
        : batchSize_(batch_size), rng_(seed), order_(dataset_size)
    {
        std::iota(order_.begin(), order_.end(), std::size_t{0});
        shuffle();
    }

    /** Batches per epoch. */
    std::size_t
    batchesPerEpoch() const
    {
        return (order_.size() + batchSize_ - 1) / batchSize_;
    }

    /**
     * Next batch of indices; reshuffles automatically when the epoch
     * wraps.
     */
    std::vector<std::size_t>
    next()
    {
        if (cursor_ >= order_.size()) {
            shuffle();
            cursor_ = 0;
        }
        const std::size_t end =
            std::min(cursor_ + batchSize_, order_.size());
        std::vector<std::size_t> batch(order_.begin() + cursor_,
                                       order_.begin() + end);
        cursor_ = end;
        return batch;
    }

  private:
    void
    shuffle()
    {
        for (std::size_t i = order_.size(); i > 1; --i) {
            const std::size_t j = rng_.uniformInt(i);
            std::swap(order_[i - 1], order_[j]);
        }
    }

    std::size_t batchSize_;
    std::size_t cursor_ = 0;
    Rng rng_;
    std::vector<std::size_t> order_;
};

} // namespace mrq

#endif // MRQ_DATA_BATCHER_HPP
