#include "data/synth_detect.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mrq {

float
boxIou(const DetBox& a, const DetBox& b)
{
    const float ax0 = a.cx - a.w * 0.5f, ax1 = a.cx + a.w * 0.5f;
    const float ay0 = a.cy - a.h * 0.5f, ay1 = a.cy + a.h * 0.5f;
    const float bx0 = b.cx - b.w * 0.5f, bx1 = b.cx + b.w * 0.5f;
    const float by0 = b.cy - b.h * 0.5f, by1 = b.cy + b.h * 0.5f;
    const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
    const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
    const float inter = ix * iy;
    const float uni = a.w * a.h + b.w * b.h - inter;
    return uni <= 0.0f ? 0.0f : inter / uni;
}

SynthDetect::SynthDetect(std::size_t train_count, std::size_t test_count,
                         std::uint64_t seed, std::size_t size)
    : size_(size)
{
    Rng train_rng(seed);
    Rng test_rng(seed ^ 0xfeedfaceULL);
    generate(trainImages_, trainBoxes_, train_count, train_rng);
    generate(testImages_, testBoxes_, test_count, test_rng);
}

void
SynthDetect::generate(Tensor& images,
                      std::vector<std::vector<DetBox>>& boxes,
                      std::size_t count, Rng& rng)
{
    images = Tensor({count, 3, size_, size_});
    boxes.assign(count, {});
    const std::size_t plane = size_ * size_;
    for (std::size_t i = 0; i < count; ++i) {
        float* pixels = images.data() + i * 3 * plane;
        // Dim textured background.
        for (std::size_t p = 0; p < 3 * plane; ++p)
            pixels[p] = static_cast<float>(
                std::clamp(0.12 + rng.normal(0.0, 0.04), 0.0, 1.0));

        const std::size_t n_obj = 1 + rng.uniformInt(3);
        for (std::size_t o = 0; o < n_obj; ++o) {
            DetBox box;
            box.classId = static_cast<int>(rng.uniformInt(kNumClasses));
            box.w = static_cast<float>(rng.uniform(0.2, 0.4));
            box.h = box.w; // square extents keep shapes recognizable
            box.cx = static_cast<float>(
                rng.uniform(box.w * 0.5 + 0.02, 0.98 - box.w * 0.5));
            box.cy = static_cast<float>(
                rng.uniform(box.h * 0.5 + 0.02, 0.98 - box.h * 0.5));

            // Avoid heavy overlap with earlier objects so every box is
            // visible and matchable.
            bool clash = false;
            for (const DetBox& prev : boxes[i])
                clash = clash || boxIou(box, prev) > 0.2f;
            if (clash)
                continue;
            renderShape(pixels, box, rng);
            boxes[i].push_back(box);
        }
    }
}

void
SynthDetect::renderShape(float* pixels, const DetBox& box, Rng& rng) const
{
    const std::size_t plane = size_ * size_;
    // Class-coded color with small jitter.
    const float base[kNumClasses][3] = {
        {0.9f, 0.2f, 0.2f}, // square: red
        {0.2f, 0.9f, 0.2f}, // disc:   green
        {0.2f, 0.3f, 0.9f}, // ring:   blue
        {0.9f, 0.9f, 0.2f}, // cross:  yellow
    };
    float color[3];
    for (int c = 0; c < 3; ++c)
        color[c] = std::clamp(
            base[box.classId][c] +
                static_cast<float>(rng.normal(0.0, 0.05)),
            0.0f, 1.0f);

    const float x0 = box.cx - box.w * 0.5f, y0 = box.cy - box.h * 0.5f;
    const float inv = 1.0f / static_cast<float>(size_);
    for (std::size_t y = 0; y < size_; ++y) {
        for (std::size_t x = 0; x < size_; ++x) {
            const float u = (static_cast<float>(x) + 0.5f) * inv;
            const float v = (static_cast<float>(y) + 0.5f) * inv;
            if (u < x0 || u > x0 + box.w || v < y0 || v > y0 + box.h)
                continue;
            // Local coordinates in [-1, 1] within the box.
            const float lu = 2.0f * (u - box.cx) / box.w;
            const float lv = 2.0f * (v - box.cy) / box.h;
            bool inside = false;
            switch (box.classId) {
              case 0: // filled square
                inside = true;
                break;
              case 1: // filled disc
                inside = lu * lu + lv * lv <= 1.0f;
                break;
              case 2: { // ring
                const float r2 = lu * lu + lv * lv;
                inside = r2 <= 1.0f && r2 >= 0.35f;
                break;
              }
              case 3: // cross
                inside = std::fabs(lu) < 0.35f || std::fabs(lv) < 0.35f;
                break;
              default:
                panic("SynthDetect: unknown class");
            }
            if (!inside)
                continue;
            const std::size_t idx = y * size_ + x;
            for (std::size_t c = 0; c < 3; ++c)
                pixels[c * plane + idx] = color[c];
        }
    }
}

double
meanAveragePrecision(const std::vector<std::vector<DetBox>>& predictions,
                     const std::vector<std::vector<DetBox>>& ground_truth,
                     std::size_t num_classes, float iou_threshold)
{
    require(predictions.size() == ground_truth.size(),
            "meanAveragePrecision: image count mismatch");

    double ap_sum = 0.0;
    std::size_t classes_with_gt = 0;
    for (std::size_t cls = 0; cls < num_classes; ++cls) {
        // Flatten this class's predictions with their image ids.
        struct Pred
        {
            std::size_t image;
            float confidence;
            DetBox box;
        };
        std::vector<Pred> preds;
        std::size_t total_gt = 0;
        for (std::size_t img = 0; img < predictions.size(); ++img) {
            for (const DetBox& p : predictions[img])
                if (static_cast<std::size_t>(p.classId) == cls)
                    preds.push_back({img, p.confidence, p});
            for (const DetBox& g : ground_truth[img])
                total_gt += static_cast<std::size_t>(g.classId) == cls;
        }
        if (total_gt == 0)
            continue;
        ++classes_with_gt;

        std::sort(preds.begin(), preds.end(),
                  [](const Pred& a, const Pred& b) {
                      return a.confidence > b.confidence;
                  });

        std::vector<std::vector<bool>> used(ground_truth.size());
        for (std::size_t img = 0; img < ground_truth.size(); ++img)
            used[img].assign(ground_truth[img].size(), false);

        std::vector<double> precision, recall;
        std::size_t tp = 0, fp = 0;
        for (const Pred& pred : preds) {
            float best_iou = 0.0f;
            std::size_t best_gt = 0;
            const auto& gts = ground_truth[pred.image];
            for (std::size_t g = 0; g < gts.size(); ++g) {
                if (static_cast<std::size_t>(gts[g].classId) != cls)
                    continue;
                const float iou = boxIou(pred.box, gts[g]);
                if (iou > best_iou) {
                    best_iou = iou;
                    best_gt = g;
                }
            }
            if (best_iou >= iou_threshold && !used[pred.image][best_gt]) {
                used[pred.image][best_gt] = true;
                ++tp;
            } else {
                ++fp;
            }
            precision.push_back(static_cast<double>(tp) / (tp + fp));
            recall.push_back(static_cast<double>(tp) / total_gt);
        }

        // Continuous-interpolation AP (area under the PR envelope).
        double ap = 0.0;
        double prev_recall = 0.0;
        for (std::size_t i = 0; i < precision.size(); ++i) {
            // Envelope: max precision at or after this recall level.
            double max_p = 0.0;
            for (std::size_t j = i; j < precision.size(); ++j)
                max_p = std::max(max_p, precision[j]);
            ap += max_p * (recall[i] - prev_recall);
            prev_recall = recall[i];
        }
        ap_sum += ap;
    }
    return classes_with_gt == 0 ? 0.0 : ap_sum / classes_with_gt;
}

} // namespace mrq
