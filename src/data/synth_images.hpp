/**
 * @file
 * Procedural image-classification dataset (ImageNet stand-in).
 *
 * Each class is a distinct oriented sinusoidal texture with a
 * class-specific color profile and a superimposed shape mask, plus
 * per-sample random phase, offset, and pixel noise.  The task is
 * learnable by a small CNN but not by a linear model, which is what
 * the multi-resolution experiments need: enough headroom that
 * quantization budgets visibly trade accuracy for term operations.
 */

#ifndef MRQ_DATA_SYNTH_IMAGES_HPP
#define MRQ_DATA_SYNTH_IMAGES_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace mrq {

/** Generated classification dataset with a train/test split. */
class SynthImages
{
  public:
    /**
     * @param train_count Number of training images.
     * @param test_count  Number of test images.
     * @param seed        Generator seed (fully determines the data).
     * @param size        Square image side (default 16).
     * @param classes     Number of classes (default 10).
     */
    SynthImages(std::size_t train_count, std::size_t test_count,
                std::uint64_t seed, std::size_t size = 16,
                std::size_t classes = 10, double noise = 0.28);

    /** Training images, [N, 3, size, size], values in [0, 1]. */
    const Tensor& trainImages() const { return trainImages_; }
    const std::vector<int>& trainLabels() const { return trainLabels_; }

    const Tensor& testImages() const { return testImages_; }
    const std::vector<int>& testLabels() const { return testLabels_; }

    std::size_t numClasses() const { return classes_; }
    std::size_t imageSize() const { return size_; }

    /** Copy a batch of training images by index list. */
    Tensor gatherImages(const std::vector<std::size_t>& indices) const;
    std::vector<int>
    gatherLabels(const std::vector<std::size_t>& indices) const;

  private:
    void generate(Tensor& images, std::vector<int>& labels,
                  std::size_t count, Rng& rng);

    /** Render one sample of class @p label into channel-major pixels. */
    void renderSample(float* pixels, int label, Rng& rng) const;

    std::size_t size_;
    std::size_t classes_;
    double noise_;
    Tensor trainImages_;
    Tensor testImages_;
    std::vector<int> trainLabels_;
    std::vector<int> testLabels_;
};

} // namespace mrq

#endif // MRQ_DATA_SYNTH_IMAGES_HPP
