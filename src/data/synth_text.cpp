#include "data/synth_text.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mrq {

SynthText::SynthText(std::size_t vocab, std::size_t train_tokens,
                     std::size_t valid_tokens, std::uint64_t seed,
                     std::size_t branching)
    : vocab_(vocab)
{
    require(vocab >= 2, "SynthText: vocab too small");
    require(branching >= 1 && branching <= vocab,
            "SynthText: invalid branching factor");
    Rng rng(seed);

    // Build the chain: each row mixes `branching` preferred successors
    // (heavy weights) with a uniform smoothing floor, so every
    // transition has nonzero probability and the entropy is finite.
    transition_.assign(vocab_, std::vector<double>(vocab_, 0.0));
    const double floor_mass = 0.1;
    for (std::size_t i = 0; i < vocab_; ++i) {
        std::vector<double>& row = transition_[i];
        for (std::size_t j = 0; j < vocab_; ++j)
            row[j] = floor_mass / static_cast<double>(vocab_);
        double remaining = 1.0 - floor_mass;
        for (std::size_t b = 0; b < branching; ++b) {
            const std::size_t succ = rng.uniformInt(vocab_);
            // Heavy-tailed split of the remaining mass.
            const double share =
                (b + 1 == branching) ? remaining : remaining * 0.5;
            row[succ] += share;
            remaining -= share;
        }
    }

    auto roll = [&](std::size_t count, std::vector<int>& out) {
        out.resize(count);
        int prev = static_cast<int>(rng.uniformInt(vocab_));
        for (std::size_t t = 0; t < count; ++t) {
            prev = sample(prev, rng);
            out[t] = prev;
        }
    };
    roll(train_tokens, train_);
    roll(valid_tokens, valid_);
}

int
SynthText::sample(int prev, Rng& rng) const
{
    const std::vector<double>& row =
        transition_[static_cast<std::size_t>(prev)];
    double u = rng.uniform();
    for (std::size_t j = 0; j < vocab_; ++j) {
        u -= row[j];
        if (u <= 0.0)
            return static_cast<int>(j);
    }
    return static_cast<int>(vocab_ - 1);
}

double
SynthText::entropyRate() const
{
    // Estimate the stationary distribution by power iteration, then
    // average row entropies under it.
    std::vector<double> pi(vocab_, 1.0 / static_cast<double>(vocab_));
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<double> next(vocab_, 0.0);
        for (std::size_t i = 0; i < vocab_; ++i)
            for (std::size_t j = 0; j < vocab_; ++j)
                next[j] += pi[i] * transition_[i][j];
        pi.swap(next);
    }
    double h = 0.0;
    for (std::size_t i = 0; i < vocab_; ++i) {
        double row_h = 0.0;
        for (std::size_t j = 0; j < vocab_; ++j) {
            const double p = transition_[i][j];
            if (p > 0.0)
                row_h -= p * std::log(p);
        }
        h += pi[i] * row_h;
    }
    return h;
}

} // namespace mrq
