/**
 * @file
 * Synthetic object-detection dataset (COCO stand-in).
 *
 * Images contain 1-3 colored shapes from four classes (square, disc,
 * ring, cross) on a textured background, with ground-truth boxes in
 * normalized center-size format.  A YOLO-style detector with a real
 * localization + objectness + classification loss trains on it, and
 * mAP@0.5 is computed with proper IoU matching, so the Fig. 22
 * (right) comparison exercises the same code paths as the paper's
 * COCO experiment.
 */

#ifndef MRQ_DATA_SYNTH_DETECT_HPP
#define MRQ_DATA_SYNTH_DETECT_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace mrq {

/** One ground-truth or predicted box in normalized coordinates. */
struct DetBox
{
    int classId = 0;
    float cx = 0.0f;
    float cy = 0.0f;
    float w = 0.0f;
    float h = 0.0f;
    float confidence = 1.0f; ///< Used by predictions only.
};

/** Intersection-over-union of two center-size boxes. */
float boxIou(const DetBox& a, const DetBox& b);

/** Generated detection dataset with a train/test split. */
class SynthDetect
{
  public:
    static constexpr std::size_t kNumClasses = 4;

    /**
     * @param train_count Number of training images.
     * @param test_count  Number of test images.
     * @param seed        Generator seed.
     * @param size        Square image side (default 32).
     */
    SynthDetect(std::size_t train_count, std::size_t test_count,
                std::uint64_t seed, std::size_t size = 32);

    const Tensor& trainImages() const { return trainImages_; }
    const std::vector<std::vector<DetBox>>& trainBoxes() const
    {
        return trainBoxes_;
    }
    const Tensor& testImages() const { return testImages_; }
    const std::vector<std::vector<DetBox>>& testBoxes() const
    {
        return testBoxes_;
    }
    std::size_t imageSize() const { return size_; }

  private:
    void generate(Tensor& images, std::vector<std::vector<DetBox>>& boxes,
                  std::size_t count, Rng& rng);
    void renderShape(float* pixels, const DetBox& box, Rng& rng) const;

    std::size_t size_;
    Tensor trainImages_;
    Tensor testImages_;
    std::vector<std::vector<DetBox>> trainBoxes_;
    std::vector<std::vector<DetBox>> testBoxes_;
};

/**
 * Mean average precision at IoU 0.5 over classes.
 *
 * @param predictions Per-image predicted boxes (with confidences).
 * @param ground_truth Per-image ground-truth boxes.
 * @param num_classes Number of classes.
 */
double meanAveragePrecision(
    const std::vector<std::vector<DetBox>>& predictions,
    const std::vector<std::vector<DetBox>>& ground_truth,
    std::size_t num_classes, float iou_threshold = 0.5f);

} // namespace mrq

#endif // MRQ_DATA_SYNTH_DETECT_HPP
