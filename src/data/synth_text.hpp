/**
 * @file
 * Synthetic language-modeling corpus (Wikitext-2 stand-in).
 *
 * Tokens are drawn from a sparse random Markov chain: every token has
 * a small set of preferred successors with heavy-tailed weights, so
 * the stream has learnable structure and a well-defined entropy floor
 * that an LSTM can approach.  Perplexity differences between
 * quantization settings then reflect model capacity, exactly the
 * quantity Fig. 22 (middle) compares.
 */

#ifndef MRQ_DATA_SYNTH_TEXT_HPP
#define MRQ_DATA_SYNTH_TEXT_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mrq {

/** Markov-chain token corpus with train/valid splits. */
class SynthText
{
  public:
    /**
     * @param vocab        Vocabulary size.
     * @param train_tokens Training stream length.
     * @param valid_tokens Validation stream length.
     * @param seed         Generator seed.
     * @param branching    Preferred successors per token.
     */
    SynthText(std::size_t vocab, std::size_t train_tokens,
              std::size_t valid_tokens, std::uint64_t seed,
              std::size_t branching = 4);

    const std::vector<int>& train() const { return train_; }
    const std::vector<int>& valid() const { return valid_; }
    std::size_t vocab() const { return vocab_; }

    /**
     * Entropy rate of the generating chain in nats per token
     * (stationary-weighted row entropies) — the perplexity floor is
     * exp(entropyRate()).
     */
    double entropyRate() const;

  private:
    int sample(int prev, Rng& rng) const;

    std::size_t vocab_;
    /** transition_[i] is a dense probability row over successors. */
    std::vector<std::vector<double>> transition_;
    std::vector<int> train_;
    std::vector<int> valid_;
};

} // namespace mrq

#endif // MRQ_DATA_SYNTH_TEXT_HPP
