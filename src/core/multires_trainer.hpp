/**
 * @file
 * Meta multi-resolution training driver (Algorithm 1).
 *
 * Each iteration runs two forward/backward passes over the same
 * minibatch: one with the highest-resolution sub-model (the teacher)
 * minimizing the task loss, and one with a randomly drawn sub-model
 * (the student) minimizing the task loss plus a distillation term
 * against the teacher's outputs.  Gradients from both passes
 * accumulate into the shared full-precision master weights, which the
 * optimizer updates once — no quantization occurs on the backward
 * path (straight-through).
 *
 * The trainer is task-agnostic: the caller supplies a hard-loss
 * closure bound to the current batch's targets and, optionally, a
 * soft-loss function comparing student and teacher outputs
 * (KL-on-logits for classification/LM, MSE-on-maps for detection).
 */

#ifndef MRQ_CORE_MULTIRES_TRAINER_HPP
#define MRQ_CORE_MULTIRES_TRAINER_HPP

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "obs/watchdog.hpp"

namespace mrq {

/** Hard loss bound to a batch: fills *dout, returns the loss. */
using HardLossFn = std::function<float(const Tensor& out, Tensor* dout)>;

/** Soft (distillation) loss between student and teacher outputs. */
using SoftLossFn = std::function<float(const Tensor& student,
                                       const Tensor& teacher,
                                       Tensor* dstudent)>;

/** Hyperparameters of the multi-resolution trainer. */
struct TrainerOptions
{
    float lr = 0.02f;
    float momentum = 0.9f;
    float weightDecay = 1e-4f;
    float gradClip = 5.0f;

    /** Weight of the soft loss in the student objective. */
    float distillWeight = 0.5f;

    /** Distillation off reproduces the naive two-model baseline. */
    bool useDistillation = true;

    /** Seed for the per-iteration student draw. */
    std::uint64_t seed = 1;
};

/** Drives Algorithm 1 over any Module and task. */
class MultiResTrainer
{
  public:
    /**
     * @param model  The network; its quantized layers are wired to the
     *               trainer's QuantContext.
     * @param ladder Sub-model configurations, ascending; back() is the
     *               teacher.  Validated at construction via
     *               validateLadder(): rungs must be strictly ordered
     *               (nested term budgets for Tq, increasing bit widths
     *               for Uq) with no duplicates.  A duplicate rung would
     *               silently bias the uniform student draw toward that
     *               configuration.
     * @param opts   Hyperparameters.
     */
    MultiResTrainer(Module& model, SubModelLadder ladder,
                    const TrainerOptions& opts);

    ~MultiResTrainer();

    MultiResTrainer(const MultiResTrainer&) = delete;
    MultiResTrainer& operator=(const MultiResTrainer&) = delete;

    /** Per-iteration result for logging. */
    struct IterStats
    {
        float teacherLoss = 0.0f;
        float studentLoss = 0.0f;
        std::size_t studentIndex = 0; ///< Which ladder entry was drawn.
    };

    /**
     * One Algorithm-1 iteration: teacher pass, student pass with
     * distillation, single optimizer step.
     *
     * The student is drawn uniformly from ladder indices
     * [0, size() - 2] — every rung except the teacher — so each
     * non-teacher sub-model receives the same share of student
     * gradient updates.  When the ladder has a single rung, that
     * config serves as both teacher and student.  Because rungs are
     * nested (see validateLadder), the weight projections of every
     * rung reuse the teacher's quantization terms, which is what the
     * per-iteration projection cache in WeightQuantizer exploits.
     *
     * @param input Batch input tensor.
     * @param hard  Task loss bound to this batch's targets.
     * @param soft  Distillation loss (ignored when disabled).
     */
    IterStats trainIteration(const Tensor& input, const HardLossFn& hard,
                             const SoftLossFn& soft);

    /**
     * One conventional iteration at a fixed configuration (used for
     * full-precision pretraining and individually trained baselines).
     */
    float trainIterationSingle(const Tensor& input, const HardLossFn& hard,
                               const SubModelConfig& cfg);

    /** Run a forward pass at @p cfg in eval mode and return the output. */
    Tensor inferAt(const Tensor& input, const SubModelConfig& cfg);

    /**
     * Training-mode forward at @p cfg with no parameter update: used
     * to re-estimate batch-norm running statistics for the sub-model
     * about to be evaluated (running stats drift across the mixed
     * teacher/student quantization configs during training).
     */
    void calibrate(const Tensor& input, const SubModelConfig& cfg);

    /** The context the model is wired to (for stats collection). */
    QuantContext& context() { return ctx_; }

    Sgd& optimizer() { return opt_; }
    const SubModelLadder& ladder() const { return ladder_; }

    /** The teacher configuration (largest budgets). */
    const SubModelConfig& teacherConfig() const { return ladder_.back(); }

    /**
     * The training-health watchdog (mode from MRQ_WATCHDOG).  Every
     * train iteration feeds teacher/student losses through it with a
     * deterministic batch index; pipelines reuse it for epoch-level
     * rules (rung monotonicity, cache hit-rate floor).  Tests inject
     * thresholds via watchdog().configure().
     */
    obs::Watchdog& watchdog() { return watchdog_; }

    /** Batches seen by this trainer (either iteration flavor). */
    std::int64_t batchIndex() const { return batchIndex_; }

  private:
    Module& model_;
    SubModelLadder ladder_;
    TrainerOptions opts_;
    QuantContext ctx_;
    Sgd opt_;
    Rng rng_;
    obs::Watchdog watchdog_;
    std::int64_t batchIndex_ = 0;
};

} // namespace mrq

#endif // MRQ_CORE_MULTIRES_TRAINER_HPP
