#include "core/multires_group.hpp"

#include <algorithm>

namespace mrq {

MultiResGroup::MultiResGroup(const std::vector<std::int64_t>& values,
                             std::size_t max_alpha, TermEncoding encoding)
    : groupSize_(values.size())
{
    const GroupQuantResult r = termQuantizeGroup(values, max_alpha, encoding);
    terms_ = r.keptTerms;
}

std::vector<std::int64_t>
MultiResGroup::valuesAt(std::size_t alpha) const
{
    std::vector<std::int64_t> out(groupSize_, 0);
    const std::size_t n = std::min(alpha, terms_.size());
    for (std::size_t i = 0; i < n; ++i)
        out[terms_[i].valueIndex] += terms_[i].term.value();
    return out;
}

std::vector<GroupTerm>
MultiResGroup::increment(std::size_t from, std::size_t to) const
{
    require(from <= to, "MultiResGroup::increment: from > to");
    const std::size_t lo = std::min(from, terms_.size());
    const std::size_t hi = std::min(to, terms_.size());
    return std::vector<GroupTerm>(terms_.begin() + lo, terms_.begin() + hi);
}

bool
MultiResGroup::nested(std::size_t small_alpha, std::size_t large_alpha) const
{
    if (small_alpha > large_alpha)
        return false;
    // Prefix structure: the first small_alpha terms are trivially a
    // subset of the first large_alpha terms.  We verify by re-deriving
    // the used-term multisets rather than assuming the prefix, so a
    // regression in the sort would be caught.
    const std::size_t lo = std::min(small_alpha, terms_.size());
    const std::size_t hi = std::min(large_alpha, terms_.size());
    for (std::size_t i = 0; i < lo; ++i) {
        bool found = false;
        for (std::size_t j = 0; j < hi && !found; ++j) {
            found = terms_[i].valueIndex == terms_[j].valueIndex &&
                    terms_[i].term == terms_[j].term;
        }
        if (!found)
            return false;
    }
    return true;
}

std::vector<std::pair<int, std::vector<std::uint16_t>>>
MultiResGroup::usageTable(std::size_t alpha) const
{
    std::vector<std::pair<int, std::vector<std::uint16_t>>> table;
    const std::size_t n = std::min(alpha, terms_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const int exp = terms_[i].term.exponent;
        if (table.empty() || table.back().first != exp)
            table.push_back({exp, {}});
        table.back().second.push_back(terms_[i].valueIndex);
    }
    return table;
}

} // namespace mrq
