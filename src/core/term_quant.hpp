/**
 * @file
 * Term quantization (TQ) over value groups and individual values.
 *
 * TQ (Sec. 3) keeps only the alpha largest-magnitude signed
 * power-of-two terms across a group of g lattice values (weights), or
 * the beta leading terms of a single value (data).  Unlike uniform
 * quantization, term positions are unconstrained, so large values in a
 * group soak up more of the budget than small ones — exactly the
 * behaviour that makes TQ a good fit for normally distributed weights.
 */

#ifndef MRQ_CORE_TERM_QUANT_HPP
#define MRQ_CORE_TERM_QUANT_HPP

#include <cstdint>
#include <vector>

#include "core/sdr.hpp"
#include "core/term.hpp"
#include "core/term_stream.hpp"

namespace mrq {

/** Which signed-digit decomposition feeds the term quantizer. */
enum class TermEncoding
{
    Naf,   ///< Canonical signed-digit form (minimal terms; the default).
    Ubr,   ///< Plain unsigned binary (for the SDR-vs-UBR ablation).
    Booth, ///< Radix-4 Booth recoding (Laconic PE baseline assumption).
};

/** Decompose a lattice value with the chosen encoding. */
std::vector<Term> encodeTerms(std::int64_t value, TermEncoding encoding);

/**
 * Stream the terms of @p value under @p encoding to
 * fn(exponent, sign) without allocating, in ascending-exponent order
 * (encodeTerms returns the same digits in descending order).  The
 * allocation-free counterpart the kernel substrate hot loops use.
 */
template <typename Fn>
inline void
visitTerms(std::int64_t value, TermEncoding encoding, Fn&& fn)
{
    switch (encoding) {
      case TermEncoding::Naf:
        visitNafTerms(value, fn);
        return;
      case TermEncoding::Ubr:
        visitUbrTerms(value, fn);
        return;
      case TermEncoding::Booth:
        visitBoothTerms(value, fn);
        return;
    }
    panic("visitTerms: unknown encoding");
}

/** Result of term-quantizing a group of lattice values. */
struct GroupQuantResult
{
    /** Quantized values, one per group member. */
    std::vector<std::int64_t> values;

    /** Kept terms, sorted by descending exponent (ties: member order). */
    std::vector<GroupTerm> keptTerms;

    /** Term count before truncation. */
    std::size_t totalTerms = 0;
};

/**
 * Term-quantize a group of lattice values with group budget @p alpha.
 *
 * All members are decomposed, the union of terms is sorted by
 * descending exponent (stable in member order), and only the leading
 * @p alpha terms are kept.
 */
GroupQuantResult termQuantizeGroup(const std::vector<std::int64_t>& values,
                                   std::size_t alpha,
                                   TermEncoding encoding = TermEncoding::Naf);

/**
 * Term-quantize a single lattice value keeping its top @p beta terms
 * (group size 1, the paper's treatment of data values).
 */
std::int64_t termQuantizeValue(std::int64_t value, std::size_t beta,
                               TermEncoding encoding = TermEncoding::Naf);

/** Number of terms the encoding assigns to @p value. */
std::size_t termCount(std::int64_t value, TermEncoding encoding);

/**
 * Mean squared TQ error for N(0, sigma^2) samples quantized on a b-bit
 * lattice with one average term per value (budget alpha = group size),
 * as a function of group size — the experiment behind Fig. 5(b).
 *
 * @param sigma       Weight standard deviation.
 * @param group_size  TQ group size g.
 * @param avg_terms   Average term budget per value (alpha = g*avg_terms).
 * @param samples     Number of samples to draw.
 * @param seed        RNG seed.
 * @return Mean squared quantization error in the real domain.
 */
double tqGroupError(double sigma, std::size_t group_size, double avg_terms,
                    std::size_t samples, std::uint64_t seed);

} // namespace mrq

#endif // MRQ_CORE_TERM_QUANT_HPP
