/**
 * @file
 * Signed-digit representation (SDR) encoding.
 *
 * Implements the canonical signed-digit form (non-adjacent form, NAF),
 * which attains the minimum possible number of nonzero digits for any
 * integer [Jedwab & Mitchell 1989], exactly the property the paper
 * relies on (Sec. 2.4).  A plain unsigned-binary (UBR) decomposition is
 * also provided for the SDR-vs-UBR ablation.
 */

#ifndef MRQ_CORE_SDR_HPP
#define MRQ_CORE_SDR_HPP

#include <cstdint>
#include <vector>

#include "core/term.hpp"

namespace mrq {

/**
 * Encode an integer into its non-adjacent form term list.
 *
 * The returned terms are ordered from largest exponent to smallest.
 * NAF guarantees no two adjacent exponents are both nonzero and that
 * the number of terms is minimal over all signed-digit encodings.
 *
 * @param value Any 64-bit integer (sign handled naturally).
 */
std::vector<Term> encodeNaf(std::int64_t value);

/**
 * Encode a non-negative integer into its unsigned binary term list
 * (one +2^k term per set bit), largest exponent first.  Negative
 * inputs yield the UBR of |value| with all signs flipped.
 */
std::vector<Term> encodeUbr(std::int64_t value);

/**
 * Radix-4 Booth recoding of an integer into signed power-of-two terms
 * with digits in {-2, -1, 0, 1, 2} mapped onto single power-of-two
 * terms, largest exponent first.  Used by the Laconic PE baseline
 * (Sec. 7.2), which assumes Booth-encoded operands.
 */
std::vector<Term> encodeBooth(std::int64_t value);

/** Number of nonzero terms in the NAF of @p value. */
std::size_t nafTermCount(std::int64_t value);

} // namespace mrq

#endif // MRQ_CORE_SDR_HPP
