#include "core/sdr.hpp"

#include <algorithm>

#include "core/term_stream.hpp"

namespace mrq {

std::vector<Term>
encodeNaf(std::int64_t value)
{
    std::vector<Term> terms;
    visitNafTerms(value, [&](std::int8_t exp, std::int8_t sign) {
        terms.push_back(Term{exp, sign});
    });
    std::reverse(terms.begin(), terms.end());
    return terms;
}

std::vector<Term>
encodeUbr(std::int64_t value)
{
    std::vector<Term> terms;
    visitUbrTerms(value, [&](std::int8_t exp, std::int8_t sign) {
        terms.push_back(Term{exp, sign});
    });
    std::reverse(terms.begin(), terms.end());
    return terms;
}

std::vector<Term>
encodeBooth(std::int64_t value)
{
    std::vector<Term> terms;
    visitBoothTerms(value, [&](std::int8_t exp, std::int8_t sign) {
        terms.push_back(Term{exp, sign});
    });
    std::reverse(terms.begin(), terms.end());
    return terms;
}

std::size_t
nafTermCount(std::int64_t value)
{
    std::size_t count = 0;
    visitNafTerms(value, [&](std::int8_t, std::int8_t) { ++count; });
    return count;
}

} // namespace mrq
