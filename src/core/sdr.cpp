#include "core/sdr.hpp"

#include <algorithm>
#include <cstdlib>

namespace mrq {

std::vector<Term>
encodeNaf(std::int64_t value)
{
    std::vector<Term> terms;
    std::int64_t n = value;
    std::int8_t exp = 0;
    while (n != 0) {
        if (n & 1) {
            // n mod 4 == 1 -> digit +1; n mod 4 == 3 -> digit -1.
            const std::int64_t digit = 2 - (n & 3);
            terms.push_back(Term{exp, static_cast<std::int8_t>(
                                          digit > 0 ? 1 : -1)});
            n -= digit;
        }
        n >>= 1;
        ++exp;
        invariant(exp < 72, "encodeNaf: runaway exponent");
    }
    std::reverse(terms.begin(), terms.end());
    return terms;
}

std::vector<Term>
encodeUbr(std::int64_t value)
{
    std::vector<Term> terms;
    const std::int8_t sign = value < 0 ? -1 : 1;
    std::uint64_t mag = value < 0
                            ? static_cast<std::uint64_t>(-(value + 1)) + 1
                            : static_cast<std::uint64_t>(value);
    std::int8_t exp = 0;
    while (mag != 0) {
        if (mag & 1)
            terms.push_back(Term{exp, sign});
        mag >>= 1;
        ++exp;
    }
    std::reverse(terms.begin(), terms.end());
    return terms;
}

std::vector<Term>
encodeBooth(std::int64_t value)
{
    // Radix-4 Booth: digits d_i in {-2,-1,0,1,2} at even bit positions,
    // value = sum d_i * 4^i.  Each nonzero digit maps to one signed
    // power-of-two term (|d| = 1 -> 2^(2i), |d| = 2 -> 2^(2i+1)).
    std::vector<Term> terms;
    std::int64_t n = value;
    std::int8_t pos = 0;
    while (n != 0) {
        const std::int64_t window = n & 3;       // low two bits
        std::int64_t digit = 0;
        switch (window) {
          case 0:
            digit = 0;
            break;
          case 1:
            digit = 1;
            break;
          case 2:
            // Choose +2 or -2 based on the next bit to keep the
            // recoding canonical (avoid carries when possible).
            digit = (n & 4) ? -2 : 2;
            break;
          case 3:
            digit = -1;
            break;
          default:
            panic("encodeBooth: unreachable window");
        }
        if (digit != 0) {
            const std::int8_t sign = digit > 0 ? 1 : -1;
            const std::int8_t exp = static_cast<std::int8_t>(
                pos + (std::abs(digit) == 2 ? 1 : 0));
            terms.push_back(Term{exp, sign});
            n -= digit;
        }
        n >>= 2;
        pos = static_cast<std::int8_t>(pos + 2);
        invariant(pos < 72, "encodeBooth: runaway position");
    }
    std::reverse(terms.begin(), terms.end());
    return terms;
}

std::size_t
nafTermCount(std::int64_t value)
{
    std::size_t count = 0;
    std::int64_t n = value;
    while (n != 0) {
        if (n & 1) {
            const std::int64_t digit = 2 - (n & 3);
            n -= digit;
            ++count;
        }
        n >>= 1;
    }
    return count;
}

} // namespace mrq
