#include "core/quant_config.hpp"

#include <sstream>

namespace mrq {

std::string
SubModelConfig::name() const
{
    std::ostringstream os;
    switch (mode) {
      case QuantMode::None:
        os << "fp32";
        break;
      case QuantMode::Uq:
        os << "uq" << bits;
        break;
      case QuantMode::Tq:
        os << "a" << alpha << "b" << beta;
        break;
    }
    return os.str();
}

void
validateLadder(const SubModelLadder& ladder)
{
    require(!ladder.empty(), "validateLadder: empty ladder");
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        const SubModelConfig& lo = ladder[i - 1];
        const SubModelConfig& hi = ladder[i];
        require(lo.mode == hi.mode,
                "validateLadder: mixed quantization modes at rung ", i);
        switch (hi.mode) {
          case QuantMode::None:
            fatal("validateLadder: multiple full-precision rungs (rung ",
                  i, " duplicates its predecessor)");
          case QuantMode::Uq:
            require(hi.bits > lo.bits,
                    "validateLadder: UQ ladder bits must strictly "
                    "increase; rung ", i, " has ", hi.bits,
                    " bits after ", lo.bits);
            break;
          case QuantMode::Tq:
            require(hi.bits == lo.bits && hi.groupSize == lo.groupSize &&
                        hi.encoding == lo.encoding,
                    "validateLadder: TQ rungs must share one lattice, "
                    "group size, and encoding (rung ", i, " differs)");
            // Nesting: a lower rung's terms must be a prefix of every
            // higher rung's, so both budgets are non-decreasing...
            require(hi.alpha >= lo.alpha && hi.beta >= lo.beta,
                    "validateLadder: rung ", i, " (", hi.name(),
                    ") shrinks a budget of its predecessor (", lo.name(),
                    ") — ladder is not nested");
            // ... and a duplicate rung would bias the student draw.
            require(hi.alpha > lo.alpha || hi.beta > lo.beta,
                    "validateLadder: rung ", i, " duplicates ",
                    lo.name(), " — remove it, duplicates bias the "
                    "uniform student draw");
            break;
        }
    }
}

SubModelLadder
makeTqLadder(std::size_t n, std::size_t alpha_max, std::size_t alpha_step,
             std::size_t beta_hi, std::size_t beta_lo, int bits,
             std::size_t group_size)
{
    require(n >= 1, "makeTqLadder: need at least one sub-model");
    require(alpha_max > alpha_step * (n - 1),
            "makeTqLadder: ladder underflows alpha");
    SubModelLadder ladder(n);
    for (std::size_t i = 0; i < n; ++i) {
        SubModelConfig& c = ladder[i];
        c.mode = QuantMode::Tq;
        c.bits = bits;
        c.groupSize = group_size;
        // Index 0 is the most aggressive sub-model.
        c.alpha = alpha_max - alpha_step * (n - 1 - i);
        c.beta = (i >= n / 2) ? beta_hi : beta_lo;
    }
    return ladder;
}

SubModelLadder
makeUqLadder(int bits_max, int bits_min, std::size_t group_size)
{
    require(bits_max >= bits_min && bits_min >= 1,
            "makeUqLadder: invalid bit range");
    SubModelLadder ladder;
    for (int b = bits_min; b <= bits_max; ++b) {
        SubModelConfig c;
        c.mode = QuantMode::Uq;
        c.bits = b;
        c.groupSize = group_size;
        ladder.push_back(c);
    }
    return ladder;
}

} // namespace mrq
