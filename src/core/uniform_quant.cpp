#include "core/uniform_quant.hpp"

#include <cstdlib>

namespace mrq {

std::int64_t
logQuantize(std::int64_t q)
{
    if (q == 0)
        return 0;
    const std::int64_t sign = q < 0 ? -1 : 1;
    const std::int64_t mag = std::llabs(q);
    // Find the power of two nearest to mag (ties round up, matching
    // round-half-away behaviour on the log lattice).
    std::int64_t below = 1;
    while ((below << 1) <= mag)
        below <<= 1;
    const std::int64_t above = below << 1;
    const std::int64_t rounded = (mag - below < above - mag) ? below : above;
    return sign * rounded;
}

} // namespace mrq
