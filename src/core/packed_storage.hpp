/**
 * @file
 * Compact storage of multi-resolution weight terms (Sec. 5.4).
 *
 * Terms are packed into fixed-width fields (Fig. 16: exponent bits
 * plus a sign bit), weight indexes are stored separately (Fig. 18),
 * and groups are laid out as budget *increments* (Fig. 17): the terms
 * a sub-model adds over the next-smaller sub-model sit in consecutive
 * memory entries, so a low-resolution sub-model touches only a prefix
 * of the memory — fewer accesses, same single stored model.
 */

#ifndef MRQ_CORE_PACKED_STORAGE_HPP
#define MRQ_CORE_PACKED_STORAGE_HPP

#include <cstdint>
#include <vector>

#include "core/multires_group.hpp"

namespace mrq {

/** Field widths of the packed term format. */
struct PackedTermFormat
{
    /** Bits for the exponent field (3 suits a 5-bit lattice's NAF). */
    unsigned exponentBits = 3;

    /** Bits for the per-term weight index (log2 of the group size). */
    unsigned indexBits = 4;

    /** Memory entry width in bits (one access reads one entry). */
    unsigned entryBits = 16;

    /** @return Bits per packed term (exponent + sign). */
    unsigned termBits() const { return exponentBits + 1; }

    /** @return Packed terms per term-memory entry. */
    unsigned termsPerEntry() const { return entryBits / termBits(); }

    /** @return Packed indexes per index-memory entry. */
    unsigned indexesPerEntry() const { return entryBits / indexBits; }
};

/**
 * One group's terms packed in increment order, with access counting.
 */
class PackedGroup
{
  public:
    /**
     * Pack a multi-resolution group for a ladder of term budgets.
     *
     * @param group  The decomposed group (terms sorted large-to-small).
     * @param ladder Ascending term budgets the deployment must support;
     *               the group stores min(ladder.back(), termCount) terms.
     * @param fmt    Field widths.
     */
    PackedGroup(const MultiResGroup& group,
                const std::vector<std::size_t>& ladder,
                const PackedTermFormat& fmt);

    /**
     * Reassemble a packed group from raw fields (deserialization).
     *
     * @param group_size Member count g.
     * @param ladder     Budget ladder the fields were packed for.
     * @param fmt        Field widths.
     * @param terms      One packed term field per stored term.
     * @param indexes    One weight index per stored term.
     */
    PackedGroup(std::size_t group_size,
                std::vector<std::size_t> ladder,
                const PackedTermFormat& fmt,
                std::vector<std::uint8_t> terms,
                std::vector<std::uint8_t> indexes);

    /** @return Group size g. */
    std::size_t groupSize() const { return groupSize_; }

    /** @return Raw packed term nibbles/fields, one per stored term. */
    const std::vector<std::uint8_t>& packedTerms() const { return terms_; }

    /** @return Raw packed per-term weight indexes. */
    const std::vector<std::uint8_t>& packedIndexes() const { return indexes_; }

    /**
     * Decode the group's values at budget @p alpha straight from the
     * packed representation (round-trip check for the format).
     */
    std::vector<std::int64_t> decode(std::size_t alpha) const;

    /** Term-memory entries read to serve budget @p alpha. */
    std::size_t termEntriesFor(std::size_t alpha) const;

    /** Index-memory entries read to serve budget @p alpha. */
    std::size_t indexEntriesFor(std::size_t alpha) const;

    /** Total storage in bits (terms + indexes). */
    std::size_t storageBits() const;

    /** @return The budget ladder the group was packed for. */
    const std::vector<std::size_t>& ladder() const { return ladder_; }

  private:
    PackedTermFormat fmt_;
    std::size_t groupSize_ = 0;
    std::vector<std::size_t> ladder_;
    std::vector<std::uint8_t> terms_;   ///< One packed field per term.
    std::vector<std::uint8_t> indexes_; ///< One weight index per term.
};

/**
 * Average storage bits per weight value for a packed deployment —
 * the Sec. 5.4 arithmetic (4*alpha + alpha*log2 g bits per group, and
 * that amortized over sub-models sharing the same storage).
 *
 * @param alpha_max   Term budget of the largest sub-model.
 * @param group_size  Group size g.
 * @param fmt         Field widths.
 * @return Bits per weight value for the stored (largest) model.
 */
double storageBitsPerWeight(std::size_t alpha_max, std::size_t group_size,
                            const PackedTermFormat& fmt);

} // namespace mrq

#endif // MRQ_CORE_PACKED_STORAGE_HPP
