/**
 * @file
 * Multi-resolution weight groups with nested term budgets (Sec. 4.1).
 *
 * A MultiResGroup decomposes a group of g lattice values once into a
 * magnitude-sorted term list.  Every term budget alpha is then simply a
 * prefix of that list, which makes the paper's nesting property
 * (Fig. 7) hold *by construction*: the terms of any lower-resolution
 * sub-model are a subset of every higher-resolution sub-model's terms,
 * so only the largest sub-model ever needs to be stored.
 */

#ifndef MRQ_CORE_MULTIRES_GROUP_HPP
#define MRQ_CORE_MULTIRES_GROUP_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/term_quant.hpp"

namespace mrq {

/** A group of lattice values viewed at any term-budget resolution. */
class MultiResGroup
{
  public:
    /**
     * Build the sorted term decomposition of a value group.
     *
     * @param values    The g lattice values (e.g. 5-bit UQ weights).
     * @param max_alpha Largest budget the group must support; terms
     *                  beyond it are discarded at construction.
     * @param encoding  Signed-digit decomposition to use.
     */
    MultiResGroup(const std::vector<std::int64_t>& values,
                  std::size_t max_alpha,
                  TermEncoding encoding = TermEncoding::Naf);

    /** @return Group size g. */
    std::size_t groupSize() const { return groupSize_; }

    /** @return Number of terms retained (<= max_alpha). */
    std::size_t termCount() const { return terms_.size(); }

    /** @return The magnitude-ordered term list (largest first). */
    const std::vector<GroupTerm>& terms() const { return terms_; }

    /**
     * Materialize the group's values at budget @p alpha (prefix of the
     * term list).  alpha larger than termCount() yields the full group.
     */
    std::vector<std::int64_t> valuesAt(std::size_t alpha) const;

    /**
     * The terms added when moving from budget @p from to budget @p to
     * (the "increments" of the Sec. 5.4 memory layout).
     */
    std::vector<GroupTerm> increment(std::size_t from, std::size_t to) const;

    /**
     * Check the nesting property: every term used at @p small_alpha is
     * also used at @p large_alpha.  True by construction; exposed so
     * tests can assert it.
     */
    bool nested(std::size_t small_alpha, std::size_t large_alpha) const;

    /**
     * The Fig. 18 term usage table at budget @p alpha: for each
     * exponent (descending), the group-member indexes using a term at
     * that exponent (signed terms listed by their owner, duplicates
     * possible when a member repeats an exponent across signs).
     */
    std::vector<std::pair<int, std::vector<std::uint16_t>>>
    usageTable(std::size_t alpha) const;

  private:
    std::size_t groupSize_ = 0;
    std::vector<GroupTerm> terms_;
};

} // namespace mrq

#endif // MRQ_CORE_MULTIRES_GROUP_HPP
