/**
 * @file
 * Uniform quantization (UQ) to a b-bit magnitude lattice.
 *
 * The paper's pipeline (Algorithm 1, Step 1) first projects weights and
 * data onto a b-bit uniform lattice with a learned clipping range
 * [PACT], then applies SDR + term quantization on the lattice values.
 * This header provides the lattice mapping used by both the training
 * fake-quantizers and the hardware-side encoders.
 *
 * Conventions (matching the paper's figures, which show 5-bit
 * magnitudes up to 31): a b-bit lattice holds integer magnitudes in
 * [0, 2^b - 1]; weights additionally carry a sign, data (post-ReLU /
 * PACT) are non-negative.
 */

#ifndef MRQ_CORE_UNIFORM_QUANT_HPP
#define MRQ_CORE_UNIFORM_QUANT_HPP

#include <cmath>
#include <cstdint>

#include "common/logging.hpp"

namespace mrq {

/** Parameters of a symmetric/unsigned uniform quantizer. */
struct UniformQuantizer
{
    /** Magnitude bitwidth b (lattice levels 0 .. 2^b - 1). */
    int bits = 5;

    /** Clipping range: weights use [-clip, clip], data uses [0, clip]. */
    float clip = 1.0f;

    /** Whether negative lattice values are representable (weights). */
    bool isSigned = true;

    /** @return Largest representable magnitude level. */
    std::int64_t
    qmax() const
    {
        return (std::int64_t{1} << bits) - 1;
    }

    /** @return Real-valued step size between adjacent lattice levels. */
    float
    scale() const
    {
        invariant(clip > 0.0f, "UniformQuantizer: clip must be positive");
        return clip / static_cast<float>(qmax());
    }

    /** Map a real value onto the integer lattice (round-to-nearest). */
    std::int64_t
    quantize(float x) const
    {
        const float s = scale();
        std::int64_t q = static_cast<std::int64_t>(std::lround(x / s));
        const std::int64_t lo = isSigned ? -qmax() : 0;
        if (q < lo)
            q = lo;
        if (q > qmax())
            q = qmax();
        return q;
    }

    /** Map a lattice level back to a real value. */
    float
    dequantize(std::int64_t q) const
    {
        return static_cast<float>(q) * scale();
    }

    /** Round-trip a real value through the lattice. */
    float
    roundTrip(float x) const
    {
        return dequantize(quantize(x));
    }
};

/**
 * Logarithmic quantization baseline (Sec. 2.3): round to the nearest
 * power of two, i.e. term quantization with a single-term budget per
 * value.  Returns the rounded integer magnitude with sign.
 */
std::int64_t logQuantize(std::int64_t q);

} // namespace mrq

#endif // MRQ_CORE_UNIFORM_QUANT_HPP
