/**
 * @file
 * Sub-model descriptors for multi-resolution training and inference.
 *
 * A sub-model (Sec. 4) is identified by its term-budget pair
 * (alpha, beta) on a fixed b-bit lattice with group size g.  The
 * QuantMode selects between the paper's TQ scheme, the UQ-sharing
 * baseline of Sec. 6.4, and unquantized (full precision) execution.
 */

#ifndef MRQ_CORE_QUANT_CONFIG_HPP
#define MRQ_CORE_QUANT_CONFIG_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "core/term_quant.hpp"

namespace mrq {

/** Quantization family applied during a forward pass. */
enum class QuantMode
{
    None,  ///< Full-precision forward (no projection).
    Uq,    ///< Uniform quantization only (bitwidth-varying baseline).
    Tq,    ///< UQ lattice + SDR + term quantization (the paper).
};

/** One sub-model's quantization setting. */
struct SubModelConfig
{
    QuantMode mode = QuantMode::Tq;

    /** Lattice magnitude bitwidth b (UQ step of Algorithm 1). */
    int bits = 5;

    /** Weight group size g. */
    std::size_t groupSize = 16;

    /** Weight term budget alpha (per group). Ignored for Uq/None. */
    std::size_t alpha = 20;

    /** Data term budget beta (per value). Ignored for Uq/None. */
    std::size_t beta = 3;

    /** Signed-digit decomposition. */
    TermEncoding encoding = TermEncoding::Naf;

    /** Term-pair budget gamma = alpha * beta (Sec. 3.3). */
    std::size_t gamma() const { return alpha * beta; }

    /** Short label like "a20b3" / "uq5" for reports. */
    std::string name() const;

    /** Exact equality of every field (used as a projection-cache key). */
    bool
    operator==(const SubModelConfig& o) const
    {
        return mode == o.mode && bits == o.bits &&
               groupSize == o.groupSize && alpha == o.alpha &&
               beta == o.beta && encoding == o.encoding;
    }
    bool operator!=(const SubModelConfig& o) const { return !(*this == o); }
};

/**
 * The ladder of sub-models a meta model is trained for, ascending in
 * resolution; back() is the teacher (largest budget).
 */
using SubModelLadder = std::vector<SubModelConfig>;

/**
 * Validate that a ladder is strictly ordered and nested: all entries
 * share one quantization family (and, for TQ, one lattice/group/
 * encoding), every entry's budgets are >= its predecessor's in every
 * component (nesting: the low-budget term set is a prefix of the
 * high-budget set), and consecutive entries are never equal —
 * duplicates would silently bias the trainer's uniform student draw.
 * Single-entry ladders are trivially valid.  Throws FatalError.
 */
void validateLadder(const SubModelLadder& ladder);

/**
 * Build the paper's standard TQ ladder: @p n sub-models with alpha
 * stepping down from @p alpha_max by @p alpha_step, all on the same
 * b-bit lattice / group size, with beta = @p beta_hi for the upper
 * half of the ladder and @p beta_lo for the lower half (mirroring the
 * Fig. 19 settings where aggressive sub-models also shrink beta).
 */
SubModelLadder makeTqLadder(std::size_t n, std::size_t alpha_max,
                            std::size_t alpha_step, std::size_t beta_hi,
                            std::size_t beta_lo, int bits,
                            std::size_t group_size);

/** Build a UQ-sharing ladder with bitwidths descending from bits_max. */
SubModelLadder makeUqLadder(int bits_max, int bits_min,
                            std::size_t group_size);

} // namespace mrq

#endif // MRQ_CORE_QUANT_CONFIG_HPP
