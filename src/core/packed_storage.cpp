#include "core/packed_storage.hpp"

#include <algorithm>

namespace mrq {

PackedGroup::PackedGroup(const MultiResGroup& group,
                         const std::vector<std::size_t>& ladder,
                         const PackedTermFormat& fmt)
    : fmt_(fmt), groupSize_(group.groupSize()), ladder_(ladder)
{
    require(!ladder_.empty(), "PackedGroup: empty budget ladder");
    require(std::is_sorted(ladder_.begin(), ladder_.end()),
            "PackedGroup: ladder must be ascending");
    require(groupSize_ <= (std::size_t{1} << fmt_.indexBits),
            "PackedGroup: group size ", groupSize_,
            " exceeds index field capacity");

    const std::size_t stored =
        std::min(ladder_.back(), group.termCount());
    const std::vector<GroupTerm>& terms = group.terms();
    for (std::size_t i = 0; i < stored; ++i) {
        const GroupTerm& gt = terms[i];
        require(static_cast<unsigned>(gt.term.exponent) <
                    (1u << fmt_.exponentBits),
                "PackedGroup: exponent ", int{gt.term.exponent},
                " does not fit in ", fmt_.exponentBits, " bits");
        const std::uint8_t field = static_cast<std::uint8_t>(
            (static_cast<unsigned>(gt.term.exponent) << 1) |
            (gt.term.sign < 0 ? 1u : 0u));
        terms_.push_back(field);
        indexes_.push_back(static_cast<std::uint8_t>(gt.valueIndex));
    }
}

PackedGroup::PackedGroup(std::size_t group_size,
                         std::vector<std::size_t> ladder,
                         const PackedTermFormat& fmt,
                         std::vector<std::uint8_t> terms,
                         std::vector<std::uint8_t> indexes)
    : fmt_(fmt), groupSize_(group_size), ladder_(std::move(ladder)),
      terms_(std::move(terms)), indexes_(std::move(indexes))
{
    require(terms_.size() == indexes_.size(),
            "PackedGroup: term/index count mismatch");
    for (std::uint8_t idx : indexes_)
        require(idx < groupSize_,
                "PackedGroup: index field out of group range");
}

std::vector<std::int64_t>
PackedGroup::decode(std::size_t alpha) const
{
    std::vector<std::int64_t> out(groupSize_, 0);
    const std::size_t n = std::min(alpha, terms_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned exp = terms_[i] >> 1;
        const bool negative = terms_[i] & 1u;
        const std::int64_t mag = std::int64_t{1} << exp;
        out[indexes_[i]] += negative ? -mag : mag;
    }
    return out;
}

std::size_t
PackedGroup::termEntriesFor(std::size_t alpha) const
{
    const std::size_t n = std::min(alpha, terms_.size());
    const std::size_t per = fmt_.termsPerEntry();
    return (n + per - 1) / per;
}

std::size_t
PackedGroup::indexEntriesFor(std::size_t alpha) const
{
    const std::size_t n = std::min(alpha, indexes_.size());
    const std::size_t per = fmt_.indexesPerEntry();
    return (n + per - 1) / per;
}

std::size_t
PackedGroup::storageBits() const
{
    return terms_.size() * fmt_.termBits() +
           indexes_.size() * fmt_.indexBits;
}

double
storageBitsPerWeight(std::size_t alpha_max, std::size_t group_size,
                     const PackedTermFormat& fmt)
{
    require(group_size > 0, "storageBitsPerWeight: group size");
    const double bits = static_cast<double>(
        alpha_max * fmt.termBits() + alpha_max * fmt.indexBits);
    return bits / static_cast<double>(group_size);
}

} // namespace mrq
