/**
 * @file
 * Tensor-level quantization projections used during training.
 *
 * The forward pass of a quantized layer projects its full-precision
 * master weights through UQ (learned clip) -> SDR -> TQ and its
 * activations through UQ -> SDR -> top-beta TQ, exactly Steps 1-5 of
 * Algorithm 1.  Gradients are passed straight through the projection
 * (STE); the paper performs no quantization during backpropagation.
 *
 * These functions are pure: they take a tensor and return the
 * quantize-dequantize round trip plus term statistics; the layers in
 * src/nn own the STE bookkeeping.
 */

#ifndef MRQ_CORE_FAKE_QUANT_HPP
#define MRQ_CORE_FAKE_QUANT_HPP

#include <cstdint>

#include "core/quant_config.hpp"
#include "tensor/tensor.hpp"

namespace mrq {

/** Statistics from one projection (used for term-pair accounting). */
struct QuantStats
{
    /** Terms actually kept (<= budget) summed over all groups/values. */
    std::size_t keptTerms = 0;

    /** Number of groups (weights) or values (data) processed. */
    std::size_t units = 0;
};

/**
 * Process-wide count of fakeQuantWeights invocations that actually
 * executed a projection (QuantMode::None pass-throughs excluded).
 * Monotonic; callers measure deltas.  Used by tests to verify the
 * WeightQuantizer projection cache avoids recomputation.
 */
std::uint64_t fakeQuantWeightsCallCount();

/**
 * Budget for a (possibly partial) tail group, proportional to its
 * size, at least one term.  Shared by the training-side quantizer and
 * the hardware simulator so both project weights identically.
 */
std::size_t scaledGroupBudget(std::size_t alpha, std::size_t group_size,
                              std::size_t actual_size);

/**
 * Project weights onto the sub-model's lattice.
 *
 * For QuantMode::Tq: UQ to the b-bit lattice with symmetric clip
 * @p clip, then group-wise TQ with budget alpha.  Groups are formed
 * within each output row (dim 0 slice) — the dot-product structure
 * the mMAC hardware sees — never across row boundaries; partial tail
 * groups get a proportionally scaled budget (at least 1 term).
 * For QuantMode::Uq: lattice round trip only.
 * For QuantMode::None: returns @p w unchanged.
 *
 * @param w     Full-precision weights (rank >= 2: rows are dim 0).
 * @param clip  Positive clipping magnitude (learned, PACT-style).
 * @param cfg   Sub-model configuration.
 * @param stats Optional out-param for kept-term statistics.
 */
Tensor fakeQuantWeights(const Tensor& w, float clip,
                        const SubModelConfig& cfg,
                        QuantStats* stats = nullptr);

/**
 * Project activations onto the sub-model's lattice: UQ on [0, clip]
 * (or [-clip, clip] when @p is_signed, for recurrent nets whose
 * activations are signed) then per-value top-beta TQ (group size 1).
 */
Tensor fakeQuantData(const Tensor& x, float clip, const SubModelConfig& cfg,
                     QuantStats* stats = nullptr, bool is_signed = false);

/**
 * Straight-through-estimator mask for a clipped projection: gradient
 * element i passes iff |x_i| (signed) or x_i (unsigned) lies strictly
 * inside the clip range.  Returns dy masked accordingly, and
 * accumulates the clip parameter's gradient (sum of dy over clipped
 * elements, signed for symmetric clips) into @p clip_grad.
 */
Tensor steBackward(const Tensor& x, const Tensor& dy, float clip,
                   bool is_signed, float* clip_grad);

} // namespace mrq

#endif // MRQ_CORE_FAKE_QUANT_HPP
