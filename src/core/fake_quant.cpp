#include "core/fake_quant.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/uniform_quant.hpp"
#include "kernels/kernels.hpp"
#include "kernels/roofline.hpp"
#include "obs/inspect.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace mrq {

namespace {

/** Projections actually executed (not served from a cache); test hook. */
std::atomic<std::uint64_t> g_weight_projections{0};

// Per-group/per-value term accounting histograms (Fig. 20's lattice
// view aggregated the hardware way).  Recorded from parallelReduce
// bodies into per-thread shards; the bucket counts are integers, so
// the aggregate is thread-count independent.  Bucket i counts exactly
// i terms; the last bucket collects everything >= 32 (weight budgets
// in the paper's ladders top out at alpha = 20).
obs::IntHistogram h_w_kept("core.tq.weight_kept_terms_per_group", 33);
obs::IntHistogram h_w_dropped("core.tq.weight_dropped_terms_per_group",
                              33);
obs::IntHistogram h_x_kept("core.tq.data_kept_terms_per_value", 9);
obs::Counter c_w_projections("core.fake_quant.weight_projections");
obs::Counter c_x_projections("core.fake_quant.data_projections");

/** Magnitude mass (sum of 2^exponent) and term count of a lattice
 *  value under the rung's encoding. */
void
termMass(std::int64_t value, TermEncoding encoding, std::int64_t* mass,
         std::int64_t* terms)
{
    for (const Term& t : encodeTerms(value, encoding)) {
        *mass += std::int64_t{1} << t.exponent;
        *terms += 1;
    }
}

/**
 * Introspect one weight projection (sampled steps only; serial, after
 * the parallel region, so the accumulation order is fixed).  SQNR of
 * @p out against @p w; for TQ additionally the magnitude mass and
 * term counts kept vs dropped at the rung's budget.  @p out lies on
 * the UQ lattice, so quantize() recovers the exact kept level and the
 * residual q_full - q_kept is the sum of the dropped terms.
 */
void
inspectWeightProjection(const Tensor& w, const Tensor& out,
                        const UniformQuantizer& uq,
                        const SubModelConfig& cfg)
{
    const std::size_t n = w.size();
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = w[i];
        const double d = v - static_cast<double>(out[i]);
        signal += v * v;
        noise += d * d;
    }
    obs::QuantInspector& inspector = obs::QuantInspector::instance();
    const int layer = obs::currentInspectLayer();
    inspector.recordWeightSqnr(layer, cfg.name(),
                               obs::sqnrDb(signal, noise),
                               static_cast<std::int64_t>(n));
    if (cfg.mode != QuantMode::Tq)
        return;
    std::int64_t kept_mass = 0;
    std::int64_t dropped_mass = 0;
    std::int64_t kept_terms = 0;
    std::int64_t dropped_terms = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t q_full = uq.quantize(w[i]);
        const std::int64_t q_kept = uq.quantize(out[i]);
        termMass(q_kept, cfg.encoding, &kept_mass, &kept_terms);
        termMass(q_full - q_kept, cfg.encoding, &dropped_mass,
                 &dropped_terms);
    }
    inspector.recordTermEnergy(layer, cfg.name(), kept_mass,
                               dropped_mass, kept_terms, dropped_terms,
                               static_cast<std::int64_t>(n));
}

/** Introspect one data projection: SQNR of @p out against the
 *  clamped input @p x (sampled steps only; serial). */
void
inspectDataProjection(const Tensor& x, const Tensor& out,
                      const SubModelConfig& cfg)
{
    const std::size_t n = x.size();
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = x[i];
        const double d = v - static_cast<double>(out[i]);
        signal += v * v;
        noise += d * d;
    }
    obs::QuantInspector::instance().recordActSqnr(
        obs::currentInspectLayer(), cfg.name(),
        obs::sqnrDb(signal, noise), static_cast<std::int64_t>(n));
}

} // namespace

std::uint64_t
fakeQuantWeightsCallCount()
{
    return g_weight_projections.load(std::memory_order_relaxed);
}

std::size_t
scaledGroupBudget(std::size_t alpha, std::size_t group_size,
                  std::size_t actual_size)
{
    if (actual_size == group_size)
        return alpha;
    const double frac = static_cast<double>(actual_size) /
                        static_cast<double>(group_size);
    const auto scaled = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(alpha)));
    return std::max<std::size_t>(1, scaled);
}

Tensor
fakeQuantWeights(const Tensor& w, float clip, const SubModelConfig& cfg,
                 QuantStats* stats)
{
    if (cfg.mode == QuantMode::None)
        return w;
    require(clip > 0.0f, "fakeQuantWeights: clip must be positive");
    MRQ_TRACE_SPAN("core.fake_quant_weights");
    g_weight_projections.fetch_add(1, std::memory_order_relaxed);
    c_w_projections.add(1);

    UniformQuantizer uq;
    uq.bits = cfg.bits;
    uq.clip = clip;
    uq.isSigned = true;

    Tensor out = w;
    const std::size_t n = w.size();
    const kernels::KernelTable& kt = kernels::kernels();
    const kernels::LatticeParams lp =
        kernels::makeLatticeParams(cfg.bits, uq.scale(), uq.isSigned);

    if (cfg.mode == QuantMode::Uq) {
        kernels::KernelRegion kr(kernels::KernelId::LatticeRoundTrip,
                                 static_cast<std::int64_t>(n));
        parallelFor(n, parallelGrain(8), [&](std::size_t b, std::size_t e) {
            kt.latticeRoundTrip(w.data() + b, out.data() + b, e - b, lp);
        });
        if (stats) {
            stats->units += n;
        }
        if (obs::inspectSampling())
            inspectWeightProjection(w, out, uq, cfg);
        return out;
    }

    // QuantMode::Tq: lattice projection, then group-wise TQ within
    // each output row (never across dot-product boundaries).  Rows are
    // independent, so they parallelize; per-row kept-term counts are
    // integers, so the chunked reduction is order-insensitive.  The
    // whole row quantizes through the lattice kernel in one call, the
    // groups project in place with the allocation-free counting
    // selection (kernels::tqGroupProject, equivalent to
    // termQuantizeGroup), and the row dequantizes in one call.
    const std::size_t g = cfg.groupSize;
    require(g > 0, "fakeQuantWeights: group size must be positive");
    const std::size_t row_len =
        w.rank() >= 2 && w.dim(0) > 0 ? n / w.dim(0) : n;
    const std::size_t rows = row_len > 0 ? n / row_len : 0;
    // Region covers the fused quantize + group-project + dequant row
    // pass; attributed to the quantize family (nominal).
    kernels::KernelRegion kr(kernels::KernelId::LatticeQuantize,
                             static_cast<std::int64_t>(n));
    const QuantStats partial = parallelReduce(
        rows, parallelGrain(row_len * 16), QuantStats{},
        [&](std::size_t r0, std::size_t r1) {
            QuantStats local;
            std::vector<std::int32_t> qrow(row_len);
            for (std::size_t row = r0; row < r1; ++row) {
                const std::size_t row_base = row * row_len;
                kt.latticeQuantize(w.data() + row_base, qrow.data(),
                                   row_len, lp);
                for (std::size_t off = 0; off < row_len; off += g) {
                    const std::size_t len = std::min(g, row_len - off);
                    const std::size_t budget =
                        scaledGroupBudget(cfg.alpha, g, len);
                    const kernels::TqGroupStats tg =
                        kernels::tqGroupProject(qrow.data() + off, len,
                                                budget, cfg.encoding,
                                                qrow.data() + off);
                    h_w_kept.record(tg.kept);
                    h_w_dropped.record(tg.total - tg.kept);
                    local.keptTerms += tg.kept;
                    local.units += 1;
                }
                kt.latticeDequant(qrow.data(), out.data() + row_base,
                                  row_len, lp.scale);
            }
            return local;
        },
        [](QuantStats acc, const QuantStats& part) {
            acc.keptTerms += part.keptTerms;
            acc.units += part.units;
            return acc;
        });
    if (stats) {
        stats->keptTerms += partial.keptTerms;
        stats->units += partial.units;
    }
    if (obs::inspectSampling())
        inspectWeightProjection(w, out, uq, cfg);
    return out;
}

Tensor
fakeQuantData(const Tensor& x, float clip, const SubModelConfig& cfg,
              QuantStats* stats, bool is_signed)
{
    if (cfg.mode == QuantMode::None)
        return x;
    require(clip > 0.0f, "fakeQuantData: clip must be positive");
    MRQ_TRACE_SPAN("core.fake_quant_data");

    UniformQuantizer uq;
    uq.bits = cfg.bits;
    uq.clip = clip;
    uq.isSigned = is_signed;

    Tensor out = x;
    const std::size_t n = x.size();
    c_x_projections.add(1);
    const bool record_hist =
        obs::metricsEnabled() && cfg.mode == QuantMode::Tq;
    const kernels::KernelTable& kt = kernels::kernels();
    const kernels::LatticeParams lp =
        kernels::makeLatticeParams(cfg.bits, uq.scale(), uq.isSigned);
    kernels::KernelRegion kr(kernels::KernelId::LatticeRoundTrip,
                             static_cast<std::int64_t>(n));
    const std::size_t kept = parallelReduce(
        n, parallelGrain(16), std::size_t{0},
        [&](std::size_t b, std::size_t e) {
            std::size_t local = 0;
            const std::size_t len = e - b;
            std::vector<std::int32_t> q(len);
            kt.latticeQuantize(x.data() + b, q.data(), len, lp);
            if (cfg.mode == QuantMode::Tq) {
                for (std::size_t i = 0; i < len; ++i) {
                    const kernels::TqValueResult r =
                        kernels::tqValueKeepTop(q[i], cfg.beta,
                                                cfg.encoding);
                    if (record_hist)
                        h_x_kept.record(r.kept);
                    local += r.kept;
                    q[i] = static_cast<std::int32_t>(r.value);
                }
            }
            kt.latticeDequant(q.data(), out.data() + b, len, lp.scale);
            return local;
        },
        [](std::size_t acc, std::size_t part) { return acc + part; });
    if (stats) {
        if (cfg.mode == QuantMode::Tq)
            stats->keptTerms += kept;
        stats->units += n;
    }
    if (obs::inspectSampling())
        inspectDataProjection(x, out, cfg);
    return out;
}

Tensor
steBackward(const Tensor& x, const Tensor& dy, float clip, bool is_signed,
            float* clip_grad)
{
    require(x.sameShape(dy), "steBackward: shape mismatch");
    Tensor dx = dy;
    const std::size_t n = x.size();
    const float cg = parallelReduce(
        n, parallelGrain(4), 0.0f,
        [&](std::size_t b, std::size_t e) {
            float local = 0.0f;
            for (std::size_t i = b; i < e; ++i) {
                const float v = x[i];
                if (is_signed) {
                    if (v > clip) {
                        dx[i] = 0.0f;
                        local += dy[i];
                    } else if (v < -clip) {
                        dx[i] = 0.0f;
                        local -= dy[i];
                    }
                } else {
                    if (v > clip) {
                        dx[i] = 0.0f;
                        local += dy[i];
                    } else if (v < 0.0f) {
                        dx[i] = 0.0f;
                    }
                }
            }
            return local;
        },
        [](float acc, float part) { return acc + part; });
    if (clip_grad)
        *clip_grad += cg;
    return dx;
}

} // namespace mrq
