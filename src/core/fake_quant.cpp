#include "core/fake_quant.hpp"

#include <algorithm>
#include <cmath>

#include "core/uniform_quant.hpp"

namespace mrq {

std::size_t
scaledGroupBudget(std::size_t alpha, std::size_t group_size,
                  std::size_t actual_size)
{
    if (actual_size == group_size)
        return alpha;
    const double frac = static_cast<double>(actual_size) /
                        static_cast<double>(group_size);
    const auto scaled = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(alpha)));
    return std::max<std::size_t>(1, scaled);
}

Tensor
fakeQuantWeights(const Tensor& w, float clip, const SubModelConfig& cfg,
                 QuantStats* stats)
{
    if (cfg.mode == QuantMode::None)
        return w;
    require(clip > 0.0f, "fakeQuantWeights: clip must be positive");

    UniformQuantizer uq;
    uq.bits = cfg.bits;
    uq.clip = clip;
    uq.isSigned = true;

    Tensor out = w;
    const std::size_t n = w.size();

    if (cfg.mode == QuantMode::Uq) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = uq.roundTrip(w[i]);
        if (stats) {
            stats->units += n;
        }
        return out;
    }

    // QuantMode::Tq: lattice projection, then group-wise TQ within
    // each output row (never across dot-product boundaries).
    const std::size_t g = cfg.groupSize;
    require(g > 0, "fakeQuantWeights: group size must be positive");
    const std::size_t row_len =
        w.rank() >= 2 && w.dim(0) > 0 ? n / w.dim(0) : n;
    std::vector<std::int64_t> group;
    group.reserve(g);
    for (std::size_t row_base = 0; row_base < n; row_base += row_len) {
        for (std::size_t off = 0; off < row_len; off += g) {
            const std::size_t base = row_base + off;
            const std::size_t len = std::min(g, row_len - off);
            group.clear();
            for (std::size_t i = 0; i < len; ++i)
                group.push_back(uq.quantize(w[base + i]));
            const std::size_t budget = scaledGroupBudget(cfg.alpha, g, len);
            const GroupQuantResult r =
                termQuantizeGroup(group, budget, cfg.encoding);
            for (std::size_t i = 0; i < len; ++i)
                out[base + i] = uq.dequantize(r.values[i]);
            if (stats) {
                stats->keptTerms += r.keptTerms.size();
                stats->units += 1;
            }
        }
    }
    return out;
}

Tensor
fakeQuantData(const Tensor& x, float clip, const SubModelConfig& cfg,
              QuantStats* stats, bool is_signed)
{
    if (cfg.mode == QuantMode::None)
        return x;
    require(clip > 0.0f, "fakeQuantData: clip must be positive");

    UniformQuantizer uq;
    uq.bits = cfg.bits;
    uq.clip = clip;
    uq.isSigned = is_signed;

    Tensor out = x;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::int64_t q = uq.quantize(x[i]);
        if (cfg.mode == QuantMode::Tq) {
            if (stats) {
                const std::size_t kept = std::min(
                    cfg.beta, termCount(q, cfg.encoding));
                stats->keptTerms += kept;
            }
            q = termQuantizeValue(q, cfg.beta, cfg.encoding);
        }
        out[i] = uq.dequantize(q);
    }
    if (stats)
        stats->units += n;
    return out;
}

Tensor
steBackward(const Tensor& x, const Tensor& dy, float clip, bool is_signed,
            float* clip_grad)
{
    require(x.sameShape(dy), "steBackward: shape mismatch");
    Tensor dx = dy;
    float cg = 0.0f;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const float v = x[i];
        if (is_signed) {
            if (v > clip) {
                dx[i] = 0.0f;
                cg += dy[i];
            } else if (v < -clip) {
                dx[i] = 0.0f;
                cg -= dy[i];
            }
        } else {
            if (v > clip) {
                dx[i] = 0.0f;
                cg += dy[i];
            } else if (v < 0.0f) {
                dx[i] = 0.0f;
            }
        }
    }
    if (clip_grad)
        *clip_grad += cg;
    return dx;
}

} // namespace mrq
