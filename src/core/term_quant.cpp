#include "core/term_quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/uniform_quant.hpp"

namespace mrq {

std::vector<Term>
encodeTerms(std::int64_t value, TermEncoding encoding)
{
    switch (encoding) {
      case TermEncoding::Naf:
        return encodeNaf(value);
      case TermEncoding::Ubr:
        return encodeUbr(value);
      case TermEncoding::Booth:
        return encodeBooth(value);
    }
    panic("encodeTerms: unknown encoding");
}

GroupQuantResult
termQuantizeGroup(const std::vector<std::int64_t>& values, std::size_t alpha,
                  TermEncoding encoding)
{
    GroupQuantResult result;
    result.values.assign(values.size(), 0);

    std::vector<GroupTerm> all;
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (const Term& t : encodeTerms(values[i], encoding))
            all.push_back(GroupTerm{t, static_cast<std::uint16_t>(i)});
    }
    result.totalTerms = all.size();

    // Sort by descending exponent; stable sort keeps ties in member
    // order so the kept prefix is deterministic.
    std::stable_sort(all.begin(), all.end(),
                     [](const GroupTerm& a, const GroupTerm& b) {
                         return a.term.exponent > b.term.exponent;
                     });

    if (all.size() > alpha)
        all.resize(alpha);

    for (const GroupTerm& gt : all)
        result.values[gt.valueIndex] += gt.term.value();
    result.keptTerms = std::move(all);
    return result;
}

std::int64_t
termQuantizeValue(std::int64_t value, std::size_t beta,
                  TermEncoding encoding)
{
    const std::vector<Term> terms = encodeTerms(value, encoding);
    std::int64_t out = 0;
    for (std::size_t i = 0; i < terms.size() && i < beta; ++i)
        out += terms[i].value();
    return out;
}

std::size_t
termCount(std::int64_t value, TermEncoding encoding)
{
    return encodeTerms(value, encoding).size();
}

double
tqGroupError(double sigma, std::size_t group_size, double avg_terms,
             std::size_t samples, std::uint64_t seed)
{
    require(group_size > 0, "tqGroupError: group size must be positive");
    Rng rng(seed);

    UniformQuantizer uq;
    uq.bits = 8;
    // Clip at 4 sigma; wider clips waste lattice range, tighter clips
    // saturate the tails.  The choice only shifts the curve, not its
    // shape, which is what Fig. 5(b) reports.
    uq.clip = static_cast<float>(4.0 * sigma);
    uq.isSigned = true;

    const std::size_t alpha = static_cast<std::size_t>(
        std::llround(avg_terms * static_cast<double>(group_size)));

    double sq_err = 0.0;
    std::size_t count = 0;
    std::vector<std::int64_t> group(group_size);
    std::vector<double> originals(group_size);
    while (count < samples) {
        for (std::size_t i = 0; i < group_size; ++i) {
            originals[i] = rng.normal(0.0, sigma);
            group[i] = uq.quantize(static_cast<float>(originals[i]));
        }
        const GroupQuantResult r = termQuantizeGroup(group, alpha);
        for (std::size_t i = 0; i < group_size; ++i) {
            const double back = uq.dequantize(r.values[i]);
            const double err = back - originals[i];
            sq_err += err * err;
        }
        count += group_size;
    }
    return sq_err / static_cast<double>(count);
}

} // namespace mrq
