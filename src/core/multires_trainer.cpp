#include "core/multires_trainer.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "obs/crash_handler.hpp"
#include "obs/heap_profiler.hpp"
#include "obs/inspect.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace mrq {

namespace {

obs::Counter c_iterations("train.iterations");
obs::Counter c_single_iterations("train.single_iterations");
/** Which ladder rung the student draw landed on, per iteration.  One
 *  bucket per rung index (ladders are small; 16 covers Fig. 24's
 *  largest sweep), so a biased draw is visible at a glance. */
obs::IntHistogram h_student_draw("train.student_draw", 17);

/**
 * Record the post-backward L2 norm of every trainable parameter's
 * gradient (sampled steps only; serial double accumulation).  Names
 * repeat across layers ("pact.clip", "conv.w"), so each gets its
 * parameter-list index appended — the collection order is the model's
 * fixed traversal order, hence deterministic.
 */
void
recordGradNorms(Module& model, const std::string& rung)
{
    obs::QuantInspector& inspector = obs::QuantInspector::instance();
    const std::vector<Parameter*> params = model.parameters();
    for (std::size_t idx = 0; idx < params.size(); ++idx) {
        const Parameter* p = params[idx];
        if (!p->trainable || p->grad.size() == 0)
            continue;
        double sq = 0.0;
        for (std::size_t i = 0; i < p->grad.size(); ++i) {
            const double g = p->grad[i];
            sq += g * g;
        }
        inspector.recordGradNorm(p->name + "#" + std::to_string(idx),
                                 rung, std::sqrt(sq),
                                 static_cast<std::int64_t>(
                                     p->grad.size()));
    }
}

} // namespace

MultiResTrainer::MultiResTrainer(Module& model, SubModelLadder ladder,
                                 const TrainerOptions& opts)
    : model_(model), ladder_(std::move(ladder)), opts_(opts),
      opt_(model.parameters(), opts.lr, opts.momentum, opts.weightDecay),
      rng_(opts.seed)
{
    require(!ladder_.empty(), "MultiResTrainer: empty sub-model ladder");
    validateLadder(ladder_);
    opt_.setGradClip(opts_.gradClip);
    model_.setQuantContext(&ctx_);
}

MultiResTrainer::~MultiResTrainer()
{
    model_.setQuantContext(nullptr);
}

MultiResTrainer::IterStats
MultiResTrainer::trainIteration(const Tensor& input, const HardLossFn& hard,
                                const SoftLossFn& soft)
{
    MRQ_TRACE_SPAN("trainer.iteration");
    obs::heartbeat();
    IterStats stats;
    c_iterations.add(1);
    obs::QuantInspector& inspector = obs::QuantInspector::instance();
    inspector.beginStep(batchIndex_);
    opt_.zeroGrad();

    // Teacher pass: highest-resolution sub-model, task loss only
    // (Algorithm 1, Steps 2-3, 6-9 for the teacher).
    Tensor teacher_out;
    {
        MRQ_TRACE_SPAN("teacher");
        ctx_.config = ladder_.back();
        teacher_out = model_.forward(input);
        Tensor d_teacher;
        stats.teacherLoss = hard(teacher_out, &d_teacher);
        model_.backward(d_teacher);
    }

    // Student pass: uniform draw over ladder_[0 .. size-2], i.e. every
    // rung except the teacher (Steps 4-5).  validateLadder() rejected
    // duplicate rungs at construction, so each distinct sub-model has
    // equal probability 1/(size-1).  With a single-rung ladder the one
    // config plays both roles.
    const std::size_t draws =
        ladder_.size() > 1 ? ladder_.size() - 1 : 1;
    stats.studentIndex = rng_.uniformInt(draws);
    h_student_draw.record(stats.studentIndex);
    Tensor student_out;
    {
        MRQ_TRACE_SPAN("student");
        ctx_.config = ladder_[stats.studentIndex];
        student_out = model_.forward(input);
        Tensor d_student;
        stats.studentLoss = hard(student_out, &d_student);
        if (opts_.useDistillation && soft) {
            Tensor d_soft;
            stats.studentLoss +=
                opts_.distillWeight *
                soft(student_out, teacher_out, &d_soft);
            d_soft *= opts_.distillWeight;
            d_student += d_soft;
        }
        model_.backward(d_student);
    }

    // Sampled-step introspection: gradient norms over the summed
    // teacher+student gradients (hence rung "mixed") and the
    // teacher/student logit agreement of this distillation draw.
    if (obs::inspectSampling()) {
        recordGradNorms(model_, "mixed");
        if (teacher_out.rank() == 2 && ladder_.size() > 1) {
            double kl = 0.0;
            double top1 = 0.0;
            logitAgreement(student_out, teacher_out, &kl, &top1);
            inspector.recordRungAgreement(
                "trainer", ladder_[stats.studentIndex].name(),
                ladder_.back().name(), kl, top1,
                static_cast<std::int64_t>(teacher_out.dim(0)));
        }
    }

    // One update over the summed gradients (Step 9).  Steady-state
    // (after the first batch warmed every lazily-grown buffer) the
    // update is in-place over existing parameter/gradient storage and
    // must stay allocation-free — the batch-0 exemption covers
    // first-touch growth (optimizer state, counter registration).
    {
        obs::AllocGuard step_guard("trainer.opt_step",
                                   batchIndex_ > 0);
        opt_.step();
    }

    // Batch-boundary health checks.  Losses are bit-identical across
    // MRQ_THREADS (pool determinism contract) and the batch index is
    // this trainer's own count, so any alert is deterministic.
    const std::int64_t batch = batchIndex_++;
    watchdog_.checkLoss("trainer.teacher", batch, stats.teacherLoss);
    watchdog_.checkLoss("trainer.student", batch, stats.studentLoss);
    inspector.feedWatchdog(watchdog_, batch);
    inspector.endStep();
    if (obs::traceExportEnabled()) {
        obs::traceCounterSample("loss.teacher", stats.teacherLoss);
        obs::traceCounterSample("loss.student", stats.studentLoss);
    }
    return stats;
}

float
MultiResTrainer::trainIterationSingle(const Tensor& input,
                                      const HardLossFn& hard,
                                      const SubModelConfig& cfg)
{
    MRQ_TRACE_SPAN("trainer.iteration_single");
    obs::heartbeat();
    c_single_iterations.add(1);
    obs::QuantInspector& inspector = obs::QuantInspector::instance();
    inspector.beginStep(batchIndex_);
    opt_.zeroGrad();
    ctx_.config = cfg;
    Tensor out = model_.forward(input);
    Tensor dout;
    const float loss = hard(out, &dout);
    model_.backward(dout);
    if (obs::inspectSampling())
        recordGradNorms(model_, cfg.name());
    // Same steady-state no-alloc contract as trainIteration().
    {
        obs::AllocGuard step_guard("trainer.opt_step",
                                   batchIndex_ > 0);
        opt_.step();
    }
    const std::int64_t batch = batchIndex_++;
    watchdog_.checkLoss("trainer.single", batch, loss);
    inspector.feedWatchdog(watchdog_, batch);
    inspector.endStep();
    if (obs::traceExportEnabled())
        obs::traceCounterSample("loss.single", loss);
    return loss;
}

void
MultiResTrainer::calibrate(const Tensor& input, const SubModelConfig& cfg)
{
    ctx_.config = cfg;
    model_.setTraining(true);
    model_.forward(input);
}

Tensor
MultiResTrainer::inferAt(const Tensor& input, const SubModelConfig& cfg)
{
    ctx_.config = cfg;
    model_.setTraining(false);
    Tensor out = model_.forward(input);
    model_.setTraining(true);
    return out;
}

} // namespace mrq
