/**
 * @file
 * Allocation-free term-decomposition walkers.
 *
 * The original encodeNaf/encodeUbr/encodeBooth (src/core/sdr.cpp)
 * materialize a std::vector<Term> per value, which dominates the cost
 * of the term-projection hot loops (one or two heap allocations per
 * tensor element).  These visitors stream the identical digit
 * sequence to a callback instead; sdr.cpp builds its vectors through
 * them, so the two can never drift.
 *
 * Emission order is ascending exponent (the natural walk direction).
 * encodeTerms() returns descending order; callers that care about
 * rank (top-beta selection) should bucket by exponent rather than
 * rely on emission order — see kernels::tqValueKeepTop.
 */

#ifndef MRQ_CORE_TERM_STREAM_HPP
#define MRQ_CORE_TERM_STREAM_HPP

#include <cstdint>
#include <cstdlib>

#include "common/logging.hpp"
#include "core/term.hpp"

namespace mrq {

/** Stream the NAF digits of @p value as (exponent, sign) pairs,
 *  ascending exponent. */
template <typename Fn>
inline void
visitNafTerms(std::int64_t value, Fn&& fn)
{
    std::int64_t n = value;
    std::int8_t exp = 0;
    while (n != 0) {
        if (n & 1) {
            // n mod 4 == 1 -> digit +1; n mod 4 == 3 -> digit -1.
            const std::int64_t digit = 2 - (n & 3);
            fn(exp, static_cast<std::int8_t>(digit > 0 ? 1 : -1));
            n -= digit;
        }
        n >>= 1;
        ++exp;
        invariant(exp < 72, "visitNafTerms: runaway exponent");
    }
}

/** Stream the plain-binary terms of @p value, ascending exponent. */
template <typename Fn>
inline void
visitUbrTerms(std::int64_t value, Fn&& fn)
{
    const std::int8_t sign = value < 0 ? -1 : 1;
    std::uint64_t mag = value < 0
                            ? static_cast<std::uint64_t>(-(value + 1)) + 1
                            : static_cast<std::uint64_t>(value);
    std::int8_t exp = 0;
    while (mag != 0) {
        if (mag & 1)
            fn(exp, sign);
        mag >>= 1;
        ++exp;
    }
}

/** Stream the radix-4 Booth terms of @p value, ascending exponent. */
template <typename Fn>
inline void
visitBoothTerms(std::int64_t value, Fn&& fn)
{
    std::int64_t n = value;
    std::int8_t pos = 0;
    while (n != 0) {
        const std::int64_t window = n & 3; // low two bits
        std::int64_t digit = 0;
        switch (window) {
          case 0:
            digit = 0;
            break;
          case 1:
            digit = 1;
            break;
          case 2:
            // Choose +2 or -2 based on the next bit to keep the
            // recoding canonical (avoid carries when possible).
            digit = (n & 4) ? -2 : 2;
            break;
          case 3:
            digit = -1;
            break;
          default:
            panic("visitBoothTerms: unreachable window");
        }
        if (digit != 0) {
            const std::int8_t sign = digit > 0 ? 1 : -1;
            const std::int8_t exp = static_cast<std::int8_t>(
                pos + (std::abs(digit) == 2 ? 1 : 0));
            fn(exp, sign);
            n -= digit;
        }
        n >>= 2;
        pos = static_cast<std::int8_t>(pos + 2);
        invariant(pos < 72, "visitBoothTerms: runaway position");
    }
}

} // namespace mrq

#endif // MRQ_CORE_TERM_STREAM_HPP
