/**
 * @file
 * Term-pair accounting (Sec. 3.3 and the x-axes of Figs. 19-24).
 *
 * Under TQ, one g-long dot-product slice costs gamma = alpha * beta
 * term-pair multiplications, so a layer with M MACs costs
 * M / g * alpha * beta term pairs.  Under b-bit UQ the hardware must
 * budget for b_w * b_d bit pairs per MAC (the paper plots UQ points
 * at their bitwidth-implied term-operation cost).
 */

#ifndef MRQ_CORE_TERM_ACCOUNTING_HPP
#define MRQ_CORE_TERM_ACCOUNTING_HPP

#include <vector>

#include "core/fake_quant.hpp"
#include "core/quant_config.hpp"
#include "core/uniform_quant.hpp"
#include "nn/module.hpp"

namespace mrq {

/** Term-pair multiplications implied by @p macs MACs under @p cfg. */
inline std::size_t
termPairCount(std::size_t macs, const SubModelConfig& cfg)
{
    switch (cfg.mode) {
      case QuantMode::None:
        return 0;
      case QuantMode::Uq: {
        const std::size_t b = static_cast<std::size_t>(cfg.bits);
        return macs * b * b;
      }
      case QuantMode::Tq: {
        const double per_mac =
            static_cast<double>(cfg.alpha) *
            static_cast<double>(cfg.beta) /
            static_cast<double>(cfg.groupSize);
        return static_cast<std::size_t>(
            per_mac * static_cast<double>(macs));
      }
    }
    return 0;
}

/**
 * Kept-term count of every TQ group of one weight tensor, in group
 * order (row-major within each dim-0 row, the same grouping
 * fakeQuantWeights uses — never across row boundaries, partial tail
 * groups with proportionally scaled budgets).
 *
 * This is the *reference* recomputation of the per-group accounting
 * that fakeQuantWeights streams into the metrics layer
 * (core.tq.weight_kept_terms_per_group) and that
 * bench_fig20_weight_hist reports: tests compare the two so the
 * training-side path and this definition cannot drift apart.
 */
inline std::vector<std::size_t>
keptTermsPerGroup(const Tensor& w, float clip, const SubModelConfig& cfg)
{
    std::vector<std::size_t> kept;
    if (cfg.mode != QuantMode::Tq)
        return kept;
    UniformQuantizer uq;
    uq.bits = cfg.bits;
    uq.clip = clip;
    uq.isSigned = true;

    const std::size_t n = w.size();
    const std::size_t g = cfg.groupSize;
    const std::size_t row_len =
        w.rank() >= 2 && w.dim(0) > 0 ? n / w.dim(0) : n;
    const std::size_t rows = row_len > 0 ? n / row_len : 0;
    std::vector<std::int64_t> group;
    group.reserve(g);
    for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t off = 0; off < row_len; off += g) {
            const std::size_t base = row * row_len + off;
            const std::size_t len = std::min(g, row_len - off);
            group.clear();
            for (std::size_t i = 0; i < len; ++i)
                group.push_back(uq.quantize(w[base + i]));
            const GroupQuantResult r = termQuantizeGroup(
                group, scaledGroupBudget(cfg.alpha, g, len),
                cfg.encoding);
            kept.push_back(r.keptTerms.size());
        }
    }
    return kept;
}

/**
 * Count the MACs of one forward pass of @p model on @p probe_input,
 * normalized per sample (probe batch dimension divides the count).
 *
 * The model's quantization wiring is left detached afterwards.
 */
inline std::size_t
countModelMacs(Module& model, const Tensor& probe_input,
               std::size_t batch_dim = 0)
{
    QuantContext ctx;
    ctx.config.mode = QuantMode::None;
    ctx.collectStats = true;
    model.setQuantContext(&ctx);
    model.forward(probe_input);
    model.setQuantContext(nullptr);
    const std::size_t batch = probe_input.dim(batch_dim);
    return batch == 0 ? 0 : ctx.macs / batch;
}

} // namespace mrq

#endif // MRQ_CORE_TERM_ACCOUNTING_HPP
