/**
 * @file
 * Term-pair accounting (Sec. 3.3 and the x-axes of Figs. 19-24).
 *
 * Under TQ, one g-long dot-product slice costs gamma = alpha * beta
 * term-pair multiplications, so a layer with M MACs costs
 * M / g * alpha * beta term pairs.  Under b-bit UQ the hardware must
 * budget for b_w * b_d bit pairs per MAC (the paper plots UQ points
 * at their bitwidth-implied term-operation cost).
 */

#ifndef MRQ_CORE_TERM_ACCOUNTING_HPP
#define MRQ_CORE_TERM_ACCOUNTING_HPP

#include "core/quant_config.hpp"
#include "nn/module.hpp"

namespace mrq {

/** Term-pair multiplications implied by @p macs MACs under @p cfg. */
inline std::size_t
termPairCount(std::size_t macs, const SubModelConfig& cfg)
{
    switch (cfg.mode) {
      case QuantMode::None:
        return 0;
      case QuantMode::Uq: {
        const std::size_t b = static_cast<std::size_t>(cfg.bits);
        return macs * b * b;
      }
      case QuantMode::Tq: {
        const double per_mac =
            static_cast<double>(cfg.alpha) *
            static_cast<double>(cfg.beta) /
            static_cast<double>(cfg.groupSize);
        return static_cast<std::size_t>(
            per_mac * static_cast<double>(macs));
      }
    }
    return 0;
}

/**
 * Count the MACs of one forward pass of @p model on @p probe_input,
 * normalized per sample (probe batch dimension divides the count).
 *
 * The model's quantization wiring is left detached afterwards.
 */
inline std::size_t
countModelMacs(Module& model, const Tensor& probe_input,
               std::size_t batch_dim = 0)
{
    QuantContext ctx;
    ctx.config.mode = QuantMode::None;
    ctx.collectStats = true;
    model.setQuantContext(&ctx);
    model.forward(probe_input);
    model.setQuantContext(nullptr);
    const std::size_t batch = probe_input.dim(batch_dim);
    return batch == 0 ? 0 : ctx.macs / batch;
}

} // namespace mrq

#endif // MRQ_CORE_TERM_ACCOUNTING_HPP
