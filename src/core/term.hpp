/**
 * @file
 * Signed power-of-two terms, the basic currency of term quantization.
 *
 * A Term is one signed power-of-two contribution, sign * 2^exponent.
 * A value's term decomposition (Sec. 2.4 of the paper) is the list of
 * such contributions; the paper's notion of "resolution" is the number
 * of terms a value (or group of values) is allowed to keep.
 */

#ifndef MRQ_CORE_TERM_HPP
#define MRQ_CORE_TERM_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace mrq {

/** One signed power-of-two term: sign * 2^exponent. */
struct Term
{
    /** Power-of-two exponent (>= 0; we quantize to integer lattices). */
    std::int8_t exponent = 0;

    /** +1 or -1. */
    std::int8_t sign = 1;

    /** @return The integer value sign * 2^exponent. */
    std::int64_t
    value() const
    {
        const std::int64_t mag = std::int64_t{1} << exponent;
        return sign >= 0 ? mag : -mag;
    }

    bool
    operator==(const Term& other) const
    {
        return exponent == other.exponent && sign == other.sign;
    }
};

/** A term tagged with the index of the group member it belongs to. */
struct GroupTerm
{
    Term term;

    /** Index of the owning value within its group (0 .. g-1). */
    std::uint16_t valueIndex = 0;
};

/** Sum a term list back into an integer value. */
inline std::int64_t
termsToValue(const std::vector<Term>& terms)
{
    std::int64_t v = 0;
    for (const Term& t : terms)
        v += t.value();
    return v;
}

} // namespace mrq

#endif // MRQ_CORE_TERM_HPP
